#include "serve/batch_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "common/expect.hpp"

namespace harmonia::serve {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

std::string shard_label(unsigned shard) {
  return "shard=\"" + std::to_string(shard) + "\"";
}

const char* kKindNames[] = {"point", "range", "scan"};
}  // namespace

std::size_t BatchScheduler::kind_index(RequestKind kind) {
  switch (kind) {
    case RequestKind::kPoint: return 0;
    case RequestKind::kRange: return 1;
    case RequestKind::kScan: return 2;
    case RequestKind::kUpdate: break;
  }
  HARMONIA_CHECK_MSG(false, "updates do not queue in the batch scheduler");
  return 0;
}

BatchScheduler::BatchScheduler(HarmoniaIndex& index, const TransferModel& link,
                               const BatchConfig& config,
                               const qos::QosConfig& qos)
    : index_(index),
      link_(link),
      config_(config),
      qos_(qos),
      wfq_(qos.weights()) {
  HARMONIA_CHECK(config_.max_batch > 0);
  HARMONIA_CHECK(config_.max_wait >= 0.0);
  HARMONIA_CHECK(config_.queue_capacity >= config_.max_batch);
  qos_.validate();
  lanes_.reserve(kKinds * qos::kNumClasses);
  for (std::size_t i = 0; i < kKinds * qos::kNumClasses; ++i)
    lanes_.emplace_back(config_.queue_capacity);
}

std::size_t BatchScheduler::depth() const {
  std::size_t n = 0;
  for (const RequestQueue& q : lanes_) n += q.size();
  return n;
}

std::size_t BatchScheduler::kind_depth(std::size_t kind) const {
  std::size_t n = 0;
  for (std::size_t c = 0; c < qos::kNumClasses; ++c) n += lane(kind, c).size();
  return n;
}

std::uint64_t BatchScheduler::admitted() const {
  std::uint64_t n = 0;
  for (const RequestQueue& q : lanes_) n += q.admitted();
  return n;
}

std::uint64_t BatchScheduler::rejected() const {
  std::uint64_t n = 0;
  for (const RequestQueue& q : lanes_) n += q.rejected();
  return n;
}

std::size_t BatchScheduler::free_slots(RequestKind kind) const {
  const std::size_t used = kind_depth(kind_index(kind));
  return config_.queue_capacity - used;
}

std::size_t BatchScheduler::admissible_slots(RequestKind kind,
                                             qos::Priority klass) const {
  std::size_t slots = free_slots(kind);
  if (!qos_.enabled) return slots;
  const std::size_t k = kind_index(kind);
  for (std::size_t c = qos::index(klass) + 1; c < qos::kNumClasses; ++c)
    slots += lane(k, c).size();
  return slots;
}

BatchScheduler::Admit BatchScheduler::admit(const Request& r) {
  HARMONIA_CHECK(r.kind != RequestKind::kUpdate);
  Admit result;
  Request q = r;
  if (q.kind == RequestKind::kScan) {
    // Clamp the scan cap to the kernel's per-query result bound; n == 0
    // degenerates to one result (a scan that asks nothing asks the next).
    q.scan_n = std::min<std::uint32_t>(std::max<std::uint32_t>(q.scan_n, 1),
                                       config_.max_range_results);
  }
  const std::size_t k = kind_index(q.kind);
  const LaneMetrics& m = kind_metrics_[k];

  if (kind_depth(k) >= config_.queue_capacity) {
    // Kind budget full. QoS overload policy: shed the newest queued
    // request of the lowest class strictly below the arrival's — it has
    // invested the least waiting and the class ranking says it loses
    // first. Without QoS (or no lower-class request) this is the legacy
    // backpressure reject.
    std::optional<std::size_t> victim_class;
    if (qos_.enabled) {
      for (std::size_t c = qos::kNumClasses; c-- > qos::index(q.klass) + 1;) {
        if (!lane(k, c).empty()) {
          victim_class = c;
          break;
        }
      }
    }
    if (!victim_class.has_value()) {
      lane(k, qos::index(q.klass)).note_rejected();
      if (obs_.active() && m.rejected != nullptr) m.rejected->inc();
      return result;
    }
    result.evicted = lane(k, *victim_class).pop_back();
    ++evicted_[*victim_class];
    if (obs_.active() && evicted_metrics_[*victim_class] != nullptr)
      evicted_metrics_[*victim_class]->inc();
  }

  const bool ok = lane(k, qos::index(q.klass)).try_push(q);
  HARMONIA_CHECK(ok);  // budget was checked (or a victim made room)
  result.admitted = true;
  if (obs_.active()) {
    if (m.admitted != nullptr) m.admitted->inc();
    if (obs_.trace != nullptr) {
      std::string note;
      if (qos_.enabled)
        note = "tenant=" + std::to_string(q.tenant) + " class=" +
               qos::to_string(q.klass);
      obs_.trace->stamp(q.id, obs::Stage::kQueueEnter, q.arrival, shard_, note);
    }
  }
  return result;
}

void BatchScheduler::set_observer(const obs::Observer& obs, unsigned shard) {
  obs_ = obs;
  shard_ = shard;
  if (obs.metrics == nullptr) return;
  obs::MetricsRegistry& m = *obs.metrics;
  const std::string sl = shard_label(shard);
  for (std::size_t k = 0; k < kKinds; ++k) {
    LaneMetrics& lane_m = kind_metrics_[k];
    const std::string labels =
        std::string{"{kind=\""} + kKindNames[k] + "\"," + sl + "}";
    lane_m.admitted = &m.counter("serve_admitted_total" + labels);
    lane_m.rejected = &m.counter("serve_rejected_total" + labels);
    lane_m.batches = &m.counter("serve_batches_total" + labels);
    lane_m.queries = &m.counter("serve_batched_queries_total" + labels);
  }
  for (std::size_t c = 0; c < qos::kNumClasses; ++c) {
    evicted_metrics_[c] = &m.counter(
        std::string{"serve_evicted_total{class=\""} +
        qos::to_string(qos::priority_at(c)) + "\"," + sl + "}");
  }
  batch_size_hist_ =
      &m.histogram("serve_batch_size{" + sl + "}",
                   obs::LatencyHistogram::exponential_edges(1.0, 65536.0, 16));
  service_hist_ =
      &m.histogram("serve_batch_service_seconds{" + sl + "}",
                   obs::LatencyHistogram::exponential_edges(1e-7, 1.0, 28));
  queue_wait_hist_ =
      &m.histogram("serve_queue_wait_seconds{" + sl + "}",
                   obs::LatencyHistogram::exponential_edges(1e-7, 1.0, 28));
}

void BatchScheduler::observe_dispatch(const Dispatch& d,
                                      std::span<const Request> members) {
  if (obs_.metrics != nullptr) {
    const LaneMetrics& m = kind_metrics_[kind_index(d.kind)];
    m.batches->inc();
    m.queries->inc(d.batch_size);
    batch_size_hist_->observe(static_cast<double>(d.batch_size));
    service_hist_->observe(d.service_seconds());
    for (const Request& r : members)
      queue_wait_hist_->observe(d.start - r.arrival);
  }
  if (obs_.trace != nullptr) {
    std::string note =
        d.attempts > 1 ? "attempts=" + std::to_string(d.attempts) : std::string{};
    if (qos_.enabled) {
      if (!note.empty()) note += ' ';
      note += std::string{"class="} + qos::to_string(d.klass);
    }
    for (const Request& r : members) {
      obs_.trace->stamp(r.id, obs::Stage::kBatchForm, d.close, shard_);
      obs_.trace->stamp(r.id, obs::Stage::kDispatch, d.start, shard_, note);
    }
  }
}

double BatchScheduler::lane_deadline(std::size_t kind, std::size_t klass) const {
  const double oldest = lane(kind, klass).oldest_arrival();
  if (oldest == kInf) return kInf;
  return oldest + config_.max_wait * qos_.classes[klass].deadline_factor;
}

double BatchScheduler::next_deadline() const {
  double d = kInf;
  for (std::size_t c = 0; c < qos::kNumClasses; ++c)
    for (std::size_t k = 0; k < kKinds; ++k)
      d = std::min(d, lane_deadline(k, c));
  return d;
}

bool BatchScheduler::size_ready() const {
  for (const RequestQueue& q : lanes_)
    if (q.size() >= config_.max_batch) return true;
  return false;
}

BatchScheduler::Dispatch BatchScheduler::dispatch_ready(double close_time,
                                                        double device_free,
                                                        unsigned epoch) {
  HARMONIA_CHECK(!empty());
  // A size-full lane is overdue regardless of deadlines; among several,
  // weighted fairness picks the class with the smallest virtual time
  // (ties keep iteration order: higher class first, then point < range <
  // scan — which reduces to the legacy point-first rule single-class).
  std::size_t best_k = 0, best_c = 0;
  bool found = false;
  double best_v = kInf;
  for (std::size_t c = 0; c < qos::kNumClasses; ++c) {
    for (std::size_t k = 0; k < kKinds; ++k) {
      if (lane(k, c).size() < config_.max_batch) continue;
      const double v = wfq_.vtime(qos::priority_at(c));
      if (!found || v < best_v) {
        found = true;
        best_v = v;
        best_k = k;
        best_c = c;
      }
    }
  }
  if (!found) {
    // Deadline-driven: earliest class-stretched deadline; ties on the
    // deadline fall to the smaller virtual time, then iteration order.
    double best_d = kInf;
    best_v = kInf;
    for (std::size_t c = 0; c < qos::kNumClasses; ++c) {
      for (std::size_t k = 0; k < kKinds; ++k) {
        if (lane(k, c).empty()) continue;
        const double d = lane_deadline(k, c);
        const double v = wfq_.vtime(qos::priority_at(c));
        if (!found || d < best_d || (d == best_d && v < best_v)) {
          found = true;
          best_d = d;
          best_v = v;
          best_k = k;
          best_c = c;
        }
      }
    }
  }
  HARMONIA_CHECK(found);
  return dispatch_lane(best_k, best_c, close_time, device_free, epoch);
}

std::vector<Request> BatchScheduler::evict_all() {
  std::vector<Request> out;
  out.reserve(depth());
  for (RequestQueue& q : lanes_)
    while (!q.empty()) out.push_back(q.pop());
  std::stable_sort(out.begin(), out.end(), [](const Request& a, const Request& b) {
    return a.arrival != b.arrival ? a.arrival < b.arrival : a.id < b.id;
  });
  return out;
}

// Applies the fault model to one dispatch: any live slowdown window scales
// the transfer share of the service time, and each armed transient failure
// costs the failed attempt plus an exponential backoff before the retry.
// Exhausting the retry budget sheds the batch (its requests answer
// dropped) so a persistently failing device cannot hold the lane forever.
double BatchScheduler::faulted_finish(double start, double base_service,
                                      double transfer_seconds, Dispatch& d) {
  if (injector_ == nullptr || !injector_->active()) return start + base_service;
  const fault::RetryPolicy& retry = injector_->mitigation().retry;
  fault::FaultReport& rep = injector_->report();
  double t = start;
  double backoff = retry.backoff;
  for (;;) {
    const double factor = injector_->transfer_factor(shard_, t);
    const double service =
        base_service + (factor - 1.0) * transfer_seconds;
    if (!injector_->take_dispatch_failure(shard_, t)) return t + service;
    t += service;  // the failed attempt still occupied device and link
    if (d.attempts >= retry.max_attempts) {
      d.shed = true;
      ++rep.retry_shed_batches;
      rep.retry_shed_requests += d.batch_size;
      rep.retry_shed_by_class[qos::index(d.klass)] += d.batch_size;
      return t;
    }
    const double wait = std::min(backoff, retry.max_backoff);
    t += wait;
    backoff *= retry.backoff_multiplier;
    rep.backoff_seconds += wait;
    ++rep.retries;
    ++d.attempts;
  }
}

BatchScheduler::Dispatch BatchScheduler::dispatch_lane(std::size_t kind,
                                                       std::size_t klass,
                                                       double close_time,
                                                       double device_free,
                                                       unsigned epoch) {
  RequestQueue& q = lane(kind, klass);
  const std::size_t n = std::min(q.size(), config_.max_batch);
  HARMONIA_CHECK(n > 0);
  std::vector<Request> members;
  members.reserve(n);
  for (std::size_t i = 0; i < n; ++i) members.push_back(q.pop());

  Dispatch d;
  d.kind = members.front().kind;
  d.klass = qos::priority_at(klass);
  d.batch_size = n;
  d.close = close_time;
  d.start = std::max(close_time, device_free);

  // Per-kind device work + transfer model. Bounds up, results down,
  // kernel in between (ranges/scans skip chunking: their online batches
  // are small next to the point-lookup stream).
  double service = 0.0;
  double transfer = 0.0;
  std::vector<Value> point_values;
  std::vector<std::vector<Value>> list_values;
  if (d.kind == RequestKind::kPoint) {
    std::vector<Key> keys;
    keys.reserve(n);
    for (const Request& r : members) keys.push_back(r.key);
    auto piped = pipelined_search(index_, keys, link_, config_.pipeline);
    service = piped.total_seconds;
    transfer = piped.upload_seconds + piped.download_seconds;
    point_values = std::move(piped.values);
  } else if (d.kind == RequestKind::kRange) {
    std::vector<Key> los, his;
    los.reserve(n);
    his.reserve(n);
    for (const Request& r : members) {
      los.push_back(r.key);
      his.push_back(r.hi);
    }
    auto r = index_.range_device(los, his, config_.max_range_results);
    transfer = link_.seconds(2 * n * sizeof(Key)) +
               link_.seconds(r.total_results * sizeof(Value));
    service = transfer + r.kernel_seconds;
    list_values = std::move(r.values);
  } else {
    std::vector<Key> los;
    std::vector<std::uint32_t> ns;
    los.reserve(n);
    ns.reserve(n);
    for (const Request& r : members) {
      los.push_back(r.key);
      ns.push_back(r.scan_n);
    }
    auto r = index_.scan_device(los, ns);
    transfer = link_.seconds(n * (sizeof(Key) + sizeof(std::uint32_t))) +
               link_.seconds(r.total_results * sizeof(Value));
    service = transfer + r.kernel_seconds;
    list_values = std::move(r.values);
  }

  d.finish = faulted_finish(d.start, service, transfer, d);
  d.responses.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Response resp = response_to(members[i]);
    resp.epoch = epoch;
    resp.dispatch = d.start;
    resp.completion = d.finish;
    resp.dropped = d.shed;
    if (!d.shed) {
      if (d.kind == RequestKind::kPoint) resp.value = point_values[i];
      else resp.range_values = std::move(list_values[i]);
    }
    d.responses.push_back(std::move(resp));
  }
  wfq_.charge(d.klass, static_cast<double>(n));
  if (obs_.active()) observe_dispatch(d, members);
  return d;
}

}  // namespace harmonia::serve
