// Request-stream generation for the serving simulator.
//
// Open loop: arrivals are a Poisson process at a fixed rate, independent
// of server behaviour — the standard way to expose queueing/batching
// frontiers (an overloaded open-loop server *must* shed load).
// Closed loop: a fixed client population where each client issues its
// next request only after its previous one completes (plus think time),
// so offered load self-throttles to the server's speed.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "queries/workload.hpp"
#include "serve/request.hpp"

namespace harmonia::serve {

/// Where the server pulls arrivals from. `peek` exposes the earliest
/// pending arrival (nullptr when none is currently scheduled); closed-loop
/// sources inject future arrivals from `on_complete` feedback.
class RequestSource {
 public:
  virtual ~RequestSource() = default;
  virtual const Request* peek() const = 0;
  virtual Request pop() = 0;
  /// Called once per response, in dispatch order, as batches complete on
  /// the virtual clock.
  virtual void on_complete(const Response& /*response*/) {}
};

/// A pre-built, arrival-sorted stream (open-loop workloads, tests).
class VectorSource final : public RequestSource {
 public:
  explicit VectorSource(std::vector<Request> requests);
  const Request* peek() const override {
    return next_ < requests_.size() ? &requests_[next_] : nullptr;
  }
  Request pop() override { return requests_[next_++]; }

 private:
  std::vector<Request> requests_;
  std::size_t next_ = 0;
};

struct OpenLoopSpec {
  /// Poisson arrival rate, requests per virtual second.
  double arrivals_per_second = 1e6;
  std::uint64_t count = 1 << 16;
  /// Request-kind mix (the remainder are point lookups).
  double update_fraction = 0.0;
  double range_fraction = 0.0;
  /// Online scans ([lo, n) semantics, RequestKind::kScan).
  double scan_fraction = 0.0;
  /// Ranges span this many consecutive tree keys.
  std::uint64_t range_span = 32;
  /// Result count each scan asks for.
  std::uint32_t scan_n = 16;
  /// Tenant population; > 1 draws a tenant per request and derives its
  /// priority class via qos::class_of_tenant. 0/1 leaves every request on
  /// the default identity (tenant 0, gold) — and, by drawing nothing
  /// extra from the RNG, keeps legacy streams bit-identical.
  std::uint32_t tenants = 0;
  /// Mix *within* the update stream (rest are value updates).
  double insert_fraction = 0.3;
  double delete_fraction = 0.1;
  queries::Distribution dist = queries::Distribution::kUniform;
  std::uint64_t seed = 1;
};

/// Builds an arrival-sorted open-loop stream over `tree_keys`. Point and
/// range targets hit existing keys; update ops come from the mixed-batch
/// builder (inserts target gaps, deletes existing keys). Deterministic in
/// (tree_keys, spec).
std::vector<Request> make_open_loop(const std::vector<Key>& tree_keys,
                                    const OpenLoopSpec& spec);

struct ClosedLoopSpec {
  unsigned clients = 64;
  /// Gap between a client's response and its next request.
  double think_seconds = 50e-6;
  /// Total requests issued across all clients.
  std::uint64_t total_requests = 1 << 14;
  queries::Distribution dist = queries::Distribution::kUniform;
  std::uint64_t seed = 1;
};

/// Point-lookup closed loop: at most `clients` requests are ever
/// outstanding, so a correct server never sheds load here.
class ClosedLoopSource final : public RequestSource {
 public:
  ClosedLoopSource(const std::vector<Key>& tree_keys, const ClosedLoopSpec& spec);
  const Request* peek() const override;
  Request pop() override;
  void on_complete(const Response& response) override;

  std::uint64_t issued() const { return issued_; }

 private:
  Request make_request(unsigned client, double arrival);

  ClosedLoopSpec spec_;
  std::vector<Key> targets_;  // pre-drawn per-issue lookup targets
  /// Scheduled arrivals keyed by time (multimap: simultaneous arrivals ok).
  std::multimap<double, Request> scheduled_;
  std::unordered_map<std::uint64_t, unsigned> client_of_;  // request id -> client
  std::uint64_t issued_ = 0;
};

}  // namespace harmonia::serve
