// The online query-serving front end over a single HarmoniaIndex/device:
// the Backend hooks that compose the bounded admission queue, the
// deadline-driven batch scheduler, and the epoch updater.
//
// Event order is deterministic (see serve/backend.hpp): the next event is
// the earliest of (next arrival, oldest batch deadline, oldest update
// deadline, staged image swap); size triggers fire inside the arrival
// that fills a lane or the update buffer. In quiesce mode an update epoch
// first drains every pending query batch at the trigger time, then
// applies and resyncs; in overlap mode the epoch builds and uploads in
// the background and swaps atomically at a batch boundary — either way
// every query is served by a tree with a whole number of epochs applied,
// and each response records which epoch count it observed.
#pragma once

#include <optional>

#include "harmonia/index.hpp"
#include "qos/admission.hpp"
#include "serve/backend.hpp"
#include "serve/batch_scheduler.hpp"
#include "serve/epoch_updater.hpp"
#include "serve/options.hpp"

namespace harmonia::serve {

class Server : public Backend {
 public:
  Server(HarmoniaIndex& index, const ServeOptions& config);

  unsigned num_shards() const override { return 1; }

  /// The image/PSA knobs dispatches are using right now: the scheduler's
  /// live values, which lag tunables() while a snapshot is latched for
  /// the in-flight epoch's swap boundary.
  std::pair<unsigned, unsigned> effective_query_knobs() const override;

 protected:
  double next_batch_time(double now) const override;
  void dispatch_ready_batch(double now, RequestSource& source,
                            ServerReport& report) override;
  void submit(const Request& r, RequestSource& source,
              ServerReport& report) override;
  void buffer_update(const Request& r) override { updater_.buffer(r); }
  double next_epoch_time(double now) const override;
  void epoch_begin(double now, RequestSource& source,
                   ServerReport& report) override;
  double next_swap_time() const override;
  void epoch_commit(double now, RequestSource& source,
                    ServerReport& report) override;
  void final_drain(double now, RequestSource& source,
                   ServerReport& report) override;
  void finish_run(ServerReport& report) override;
  void install_tunables(const Tunables& t, double now) override;

 private:
  void handle_dispatch(BatchScheduler::Dispatch d, RequestSource& source,
                       ServerReport& report);
  /// Answers `r` dropped at `now` without dispatching it. The caller has
  /// already booked the drop/shed counters; `note` goes to the trace
  /// ("rejected" / "throttled" / "evicted").
  void answer_dropped(const Request& r, double now, const char* note,
                      RequestSource& source, ServerReport& report);
  /// Quiesce-mode epoch: drain, then apply + resync on the device clock.
  void run_epoch(double at, RequestSource& source, ServerReport& report);
  /// Books one finished epoch (either mode) into the report.
  void account_epoch(const EpochUpdater::EpochResult& e, RequestSource& source,
                     ServerReport& report);
  /// Pushes a snapshot's image/PSA knobs into the dispatch path — called
  /// only at safe points (no staged epoch in flight, or its commit).
  void install_query_knobs(const Tunables& t);
  /// Swap-boundary bookkeeping shared by epoch_commit and final_drain:
  /// installs a latched snapshot and feeds the controller the freshly
  /// re-profiled GS / Eq.2 bits of the just-committed image.
  void at_swap_boundary(double now);

  /// Per-class cached metric handles (null when unobserved).
  struct ClassMetrics {
    obs::Counter* completed = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* throttled = nullptr;
    obs::LatencyHistogram* latency = nullptr;
  };

  HarmoniaIndex& index_;
  ServeOptions config_;
  BatchScheduler scheduler_;
  EpochUpdater updater_;
  fault::FaultInjector injector_;
  /// Per-tenant token-bucket throttling at the admission edge.
  qos::AdmissionController admission_;
  /// Shard 0 of the wired durability domain (null = no persistence).
  persist::ShardDurability* durability_ = nullptr;
  std::array<ClassMetrics, qos::kNumClasses> class_metrics_{};
  double device_free_ = 0.0;
  /// Image/PSA knobs latched while a staged epoch is in flight; they
  /// install at its swap boundary (apply_tunables contract).
  std::optional<Tunables> pending_query_;
};

}  // namespace harmonia::serve
