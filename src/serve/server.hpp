// The online query-serving front end: one virtual-clock event loop that
// composes the bounded admission queue, the deadline-driven batch
// scheduler, and the epoch updater over a single HarmoniaIndex/device.
//
// Event order is deterministic: the next event is the earliest of
// (next arrival, oldest batch deadline, oldest update deadline); size
// triggers fire inside the arrival that fills a lane or the update
// buffer. An update epoch first quiesces (flushes every pending query
// batch at the trigger time), then applies and resyncs — so every query
// is served by a tree with a whole number of epochs applied, and each
// response records which epoch count it observed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/stats.hpp"
#include "fault/injector.hpp"
#include "harmonia/index.hpp"
#include "harmonia/pipeline.hpp"
#include "obs/observer.hpp"
#include "serve/batch_scheduler.hpp"
#include "serve/epoch_updater.hpp"
#include "serve/workload.hpp"

namespace harmonia::serve {

struct ServerConfig {
  BatchConfig batch;
  EpochConfig epoch;
  TransferModel link;
  /// Deterministic fault schedule (empty = fault-free, bit-identical to a
  /// build without the fault layer) and the mitigation knobs. Shard-lost
  /// events need a ShardedServer; a single-device plan may not carry them.
  fault::FaultPlan faults;
  fault::MitigationConfig mitigation;
  /// Optional metrics + request-lifecycle tracing (docs/observability.md).
  /// Both pointers null = zero-overhead, bit-identical to an unobserved
  /// run. The caller owns the registry/recorder.
  obs::Observer obs;
};

struct ServerReport {
  /// Every request's outcome (including drops), in service order.
  std::vector<Response> responses;

  /// Seconds, over completed (non-dropped) queries.
  Summary latency;
  Summary queue_delay;
  /// Requests per dispatched query batch.
  Summary batch_size;
  /// Scheduler depth sampled at each query admission attempt.
  Summary queue_depth;

  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t completed = 0;  // non-dropped queries served
  /// Admitted queries later answered `dropped` by a fault mitigation
  /// (retry budget exhausted / degraded-mode backlog). Kept apart from
  /// `dropped` so admitted + dropped == arrivals holds under faults.
  std::uint64_t shed = 0;
  /// Update *requests* admitted into the epoch buffer (each produces one
  /// update response; distinct from updates_applied, which counts ops and
  /// excludes failed ones). Closes the admission identity below.
  std::uint64_t update_requests = 0;
  std::uint64_t batches = 0;
  std::uint64_t epochs = 0;
  std::uint64_t updates_applied = 0;
  std::uint64_t updates_failed = 0;

  /// Virtual time of the last completion.
  double makespan = 0.0;
  /// Device-occupied time (batch service + epoch apply/resync).
  double busy_seconds = 0.0;

  /// Injection/detection/mitigation tallies (all zero on fault-free runs).
  fault::FaultReport faults;

  /// Completed queries per virtual second, end to end.
  double query_throughput() const {
    return makespan > 0.0 ? static_cast<double>(completed) / makespan : 0.0;
  }
  /// Completed queries per device-busy second: the capacity the batching
  /// achieved, independent of how hard the workload pushed.
  double service_rate() const {
    return busy_seconds > 0.0 ? static_cast<double>(completed) / busy_seconds : 0.0;
  }

  /// Accounting identities every fully-drained run must satisfy; the
  /// report builders assert them before returning (two prior serving PRs
  /// each shipped a silent tally bug such an invariant would have
  /// tripped). At close nothing is in flight, so:
  ///   arrivals == admitted + dropped
  ///   admitted == completed + shed + update_requests
  ///   responses.size() == arrivals  (every request answered exactly once)
  /// Throws ContractViolation on violation.
  void check_invariants() const;
};

class Server {
 public:
  Server(HarmoniaIndex& index, const ServerConfig& config);

  /// Runs the stream to completion (drains all lanes and leftover
  /// updates) and returns the aggregate report.
  ServerReport run(RequestSource& source);
  /// Open-loop convenience: serve a pre-built, arrival-sorted stream.
  ServerReport run(std::span<const Request> requests);

 private:
  void handle_dispatch(BatchScheduler::Dispatch d, RequestSource& source,
                       ServerReport& report);
  void run_epoch(double at, RequestSource& source, ServerReport& report);

  HarmoniaIndex& index_;
  ServerConfig config_;
  BatchScheduler scheduler_;
  EpochUpdater updater_;
  fault::FaultInjector injector_;
  double device_free_ = 0.0;
};

}  // namespace harmonia::serve
