// Request/response types for the online serving layer (src/serve/).
//
// The serving subsystem simulates an online deployment of the offline
// index on a *virtual clock*: every request carries an arrival timestamp
// in virtual seconds, and every response records when the request was
// admitted, dispatched, and completed on that same clock. Device-side
// costs come from the gpusim cycle model plus the PCIe TransferModel, so
// a whole simulated run is deterministic for a fixed request stream.
#pragma once

#include <cstdint>
#include <vector>

#include "harmonia/tree.hpp"
#include "harmonia/search.hpp"
#include "qos/priority.hpp"
#include "queries/batch.hpp"

namespace harmonia::serve {

/// kScan is the online range-scan: the first scan_n values with key >=
/// `key` ([lo, n) semantics, the KVell btree_find_n shape), served by the
/// device range kernel scanning leaf-level to the result cap.
enum class RequestKind : std::uint8_t { kPoint, kRange, kUpdate, kScan };

const char* to_string(RequestKind kind);

struct Request {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::kPoint;
  /// Arrival time in virtual seconds (monotone within a stream).
  double arrival = 0.0;
  /// Point target / range and scan lower bound / update target.
  Key key = 0;
  /// Range upper bound (inclusive); unused otherwise.
  Key hi = 0;
  /// Scan result count ([lo, n)); unused otherwise.
  std::uint32_t scan_n = 0;
  /// Multi-tenant identity: the issuing tenant and its priority class.
  /// Defaults (tenant 0, gold) make single-tenant streams bit-identical
  /// to the pre-QoS serving path.
  std::uint32_t tenant = 0;
  qos::Priority klass = qos::Priority::kGold;
  /// Update payload; unused for queries.
  queries::OpKind op = queries::OpKind::kUpdate;
  Value value = 0;
};

struct Response {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::kPoint;
  /// Echoed tenant identity (per-class accounting keys off these).
  std::uint32_t tenant = 0;
  qos::Priority klass = qos::Priority::kGold;
  /// Rejected by backpressure: never dispatched, completion == arrival.
  bool dropped = false;
  /// Update epochs applied before this request was served. A query with
  /// epoch e observed exactly the first e update epochs; an update
  /// response carries the epoch that applied it (1-based).
  unsigned epoch = 0;
  double arrival = 0.0;
  /// When the batch containing this request started on the device.
  double dispatch = 0.0;
  /// When the batch's results finished downloading (or the epoch finished
  /// resyncing, for updates).
  double completion = 0.0;
  /// Point result (kNotFound for misses); unused for ranges/updates.
  Value value = kNotFound;
  /// Range/scan results, ascending, truncated at the scheduler's
  /// max_results (ranges) or the request's scan_n (scans).
  std::vector<Value> range_values;

  double latency() const { return completion - arrival; }
  double queue_delay() const { return dispatch - arrival; }
};

/// Seeds a response from its request: identity (id/kind/tenant/class) and
/// arrival. Every layer that answers a request goes through this so the
/// tenant identity is never dropped on some path.
inline Response response_to(const Request& r) {
  Response resp;
  resp.id = r.id;
  resp.kind = r.kind;
  resp.tenant = r.tenant;
  resp.klass = r.klass;
  resp.arrival = r.arrival;
  return resp;
}

}  // namespace harmonia::serve
