// Bounded admission queue: the backpressure point of the serving layer.
//
// Admission either succeeds (the request waits for a batch) or fails
// immediately (queue full -> the caller records a dropped response).
// Rejecting at admission keeps queueing delay bounded instead of letting
// an overloaded server grow an unbounded backlog.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>

#include "serve/request.hpp"

namespace harmonia::serve {

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Admits `r` unless the queue is at capacity. Returns false on reject.
  bool try_push(const Request& r);

  const Request& front() const { return pending_.front(); }
  Request pop();
  /// Removes and returns the *newest* waiting request (QoS overload
  /// eviction sheds the request that has invested the least waiting).
  Request pop_back();

  /// Books a rejection decided by the caller (the scheduler enforces a
  /// shared per-kind budget across class lanes, so a lane can be refused
  /// while below its own capacity).
  void note_rejected() { ++rejected_; }

  bool empty() const { return pending_.empty(); }
  std::size_t size() const { return pending_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Arrival time of the oldest waiting request; +inf when empty (so
  /// deadline arithmetic needs no special casing).
  double oldest_arrival() const {
    return pending_.empty() ? std::numeric_limits<double>::infinity()
                            : pending_.front().arrival;
  }

  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t rejected() const { return rejected_; }

 private:
  std::size_t capacity_;
  std::deque<Request> pending_;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace harmonia::serve
