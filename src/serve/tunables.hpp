// serve::Tunables — the runtime-adjustable half of the serving config.
//
// ServeOptions used to freeze every knob at construction; there was no
// sanctioned way to change a parameter on a live backend. Tunables splits
// the surface: construction-time config (topology, capacities, modes,
// fault plans) stays in ServeOptions, while the five knobs a controller
// may legitimately move online — batch size/deadline, epoch apply
// threads, NTG group size, PSA sort bits — travel as a validated
// snapshot that Backend exposes via tunables()/apply_tunables().
//
// Safe points (docs/serving.md#autotuner): scheduler knobs install
// between dispatches (the next batch formation); apply_threads affects
// only epochs triggered after the change; the image/PSA knobs
// (group_size, sort_bits) install only at an epoch-swap boundary — while
// a staged epoch is in flight they latch and land with the last swap, so
// in a sharded topology no two shards ever dispatch with mixed values.
//
// TuneController is the closed-loop side of the same surface: an
// abstract controller (implemented by tune::Autotuner) the backend ticks
// on the virtual clock. Every decision — applied, vetoed, rolled back —
// is stamped into metrics (serve_tune_*_total) and the trace.
#pragma once

#include <cstdint>
#include <string>

namespace harmonia::serve {

struct ServeOptions;

struct Tunables {
  /// Scheduler knobs — take effect at the next batch formation.
  std::size_t max_batch = 2048;
  double max_wait = 200e-6;
  /// CPU workers for the Algorithm-1 apply — affects epochs triggered
  /// after the change (an in-flight staged build keeps its cost).
  unsigned apply_threads = 1;
  /// Image/PSA knobs — swap-boundary only. group_size: explicit NTG
  /// thread-group size (power of two <= warp; 0 = fanout-based default).
  unsigned group_size = 0;
  /// PSA sort-bit count (0 = Equation 2 recomputes per batch).
  unsigned sort_bits = 0;

  bool operator==(const Tunables&) const = default;

  /// The initial snapshot a backend starts from: the corresponding
  /// fields of its validated construction-time options.
  static Tunables from(const ServeOptions& opts);

  /// Rejects a snapshot the owning backend could not serve with:
  /// max_batch must stay positive and within the construction-time queue
  /// capacity (the queues themselves are not resizable), max_wait and
  /// apply_threads positive, group_size a power of two <= the warp width
  /// (or 0), sort_bits <= the key width. Throws ContractViolation.
  void validate(const ServeOptions& opts) const;
};

/// One-line rendering for trace annotations and test failure messages.
std::string to_string(const Tunables& t);

/// What a controller decided at one tick. kNone ticks are silent;
/// kApply/kVeto/kRollback are each counted and trace-annotated.
enum class TuneAction : std::uint8_t { kNone, kApply, kVeto, kRollback };

const char* to_string(TuneAction action);

struct TuneDecision {
  TuneAction action = TuneAction::kNone;
  /// The snapshot to install (kApply / kRollback only).
  Tunables target;
  /// Human-readable rationale ("max_batch 2048->4096 tput +4.1%"); goes
  /// verbatim into the trace annotation.
  std::string note;
};

/// The closed-loop controller interface (implemented by tune::Autotuner;
/// ServeOptions carries a non-owning pointer). The backend drives it
/// from the event loop on the deterministic virtual clock, so a
/// controller that reads only its inputs replays bit-identically.
class TuneController {
 public:
  virtual ~TuneController() = default;

  /// Next control-round instant on the virtual clock; +inf disables
  /// ticking. The backend never ticks after the stream has drained.
  virtual double next_tick() const = 0;

  /// Runs one control round at `now` against the currently adopted
  /// snapshot. The backend installs kApply/kRollback targets itself (at
  /// the knobs' safe points) and stamps every non-kNone action.
  virtual TuneDecision tick(double now, const Tunables& current) = 0;

  /// Re-profile feedback from the backend at each epoch-swap boundary:
  /// the NTG group size (Equation 4 narrowing) and PSA sort bits
  /// (Equation 2) freshly profiled on the just-committed image.
  /// Controllers may re-seed their search from these; default ignores.
  virtual void observe_profile(double /*now*/, unsigned /*group_size*/,
                               unsigned /*sort_bits*/) {}
};

}  // namespace harmonia::serve
