#include "serve/server.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "common/expect.hpp"

namespace harmonia::serve {

Server::Server(HarmoniaIndex& index, const ServeOptions& config)
    : index_(index),
      config_(config),
      scheduler_(index, config.link, config.batch, config.qos),
      updater_(index, config.link, config.epoch),
      injector_(config.faults, config.mitigation, 1),
      admission_(config.qos) {
  config_.validate(1);
  init_tuning(config_);
  if (injector_.active()) {
    scheduler_.set_fault_context(&injector_, 0);
    updater_.set_fault_context(&injector_, 0);
  }
  if (config_.durability != nullptr) {
    durability_ = config_.durability->shard(0);
    updater_.set_durability(durability_);
  }
  if (config_.obs.active()) {
    scheduler_.set_observer(config_.obs, 0);
    updater_.set_observer(config_.obs, 0);
    injector_.set_observer(config_.obs);
  }
  if (config_.obs.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.obs.metrics;
    for (std::size_t c = 0; c < qos::kNumClasses; ++c) {
      const std::string labels =
          std::string{"{class=\""} + qos::to_string(qos::priority_at(c)) + "\"}";
      class_metrics_[c].completed =
          &m.counter("serve_class_completed_total" + labels);
      class_metrics_[c].shed = &m.counter("serve_class_shed_total" + labels);
      class_metrics_[c].dropped =
          &m.counter("serve_class_dropped_total" + labels);
      class_metrics_[c].throttled =
          &m.counter("serve_class_throttled_total" + labels);
      class_metrics_[c].latency = &m.histogram(
          "serve_class_latency_seconds" + labels,
          obs::LatencyHistogram::exponential_edges(1e-7, 1.0, 28));
    }
  }
}

void Server::handle_dispatch(BatchScheduler::Dispatch d, RequestSource& source,
                             ServerReport& report) {
  device_free_ = d.finish;
  ++report.batches;
  report.batch_size.add(static_cast<double>(d.batch_size));
  report.busy_seconds += d.service_seconds();
  for (Response& resp : d.responses) {
    const std::size_t c = qos::index(resp.klass);
    if (resp.dropped) {
      ++report.shed;  // retry budget exhausted: admitted but not served
      ++report.class_shed[c];
      if (class_metrics_[c].shed != nullptr) class_metrics_[c].shed->inc();
    } else {
      ++report.completed;
      report.latency.add(resp.latency());
      report.queue_delay.add(resp.queue_delay());
      ++report.class_completed[c];
      report.class_latency[c].add(resp.latency());
      if (class_metrics_[c].completed != nullptr) {
        class_metrics_[c].completed->inc();
        class_metrics_[c].latency->observe(resp.latency());
      }
    }
    if (config_.obs.trace != nullptr) {
      config_.obs.trace->stamp(resp.id, obs::Stage::kReply, resp.completion, 0,
                               resp.dropped ? "shed" : std::string{});
    }
    report.makespan = std::max(report.makespan, resp.completion);
    source.on_complete(resp);
    report.responses.push_back(std::move(resp));
  }
}

void Server::account_epoch(const EpochUpdater::EpochResult& e,
                           RequestSource& source, ServerReport& report) {
  ++report.epochs;
  report.updates_applied += e.stats.total_ops();
  report.updates_failed += e.stats.failed;
  report.epoch_build_seconds += e.apply_seconds;
  report.epoch_upload_seconds += e.resync_seconds;
  report.epoch_swap_wait_seconds += e.swap_wait_seconds;
  report.epoch_stall_seconds += e.stall_seconds;
  if (e.patch) {
    ++report.patch_epochs;
    report.epoch_patch_build_seconds += e.apply_seconds;
    report.epoch_patch_upload_seconds += e.resync_seconds;
  } else {
    ++report.compaction_epochs;
    report.epoch_compaction_build_seconds += e.apply_seconds;
    report.epoch_compaction_upload_seconds += e.resync_seconds;
  }
  for (const Response& resp : e.responses) {
    report.makespan = std::max(report.makespan, resp.completion);
    source.on_complete(resp);
    report.responses.push_back(resp);
  }
  if (durability_ != nullptr) {
    // Snapshot point: the epoch just committed, so the image on disk is
    // a whole number of epochs. A delta-mode compaction forces one (the
    // full image was just rebuilt anyway — the natural snapshot);
    // otherwise the cadence decides. Modeled as an async background
    // write: no device/serving time is charged.
    const bool force =
        config_.epoch.mode == EpochMode::kIncremental && !e.patch;
    durability_->maybe_snapshot(e.epoch, index_, force, e.finish);
  }
}

void Server::run_epoch(double at, RequestSource& source, ServerReport& report) {
  // Quiesce: every batch admitted before the epoch trigger is served by
  // the pre-epoch tree. (They dispatch now; the device serializes them
  // ahead of the update application.)
  while (!scheduler_.empty()) {
    handle_dispatch(scheduler_.dispatch_ready(at, device_free_, updater_.epochs()),
                    source, report);
  }
  const auto e = updater_.apply(at, device_free_);
  device_free_ = e.finish;
  report.busy_seconds += e.finish - e.start;
  account_epoch(e, source, report);
  at_swap_boundary(e.finish);  // a quiesce epoch is its own swap boundary
}

double Server::next_batch_time(double now) const {
  if (scheduler_.empty()) return kNever;
  const double trigger =
      scheduler_.size_ready() ? now : scheduler_.next_deadline();
  return std::max(trigger, device_free_);
}

void Server::dispatch_ready_batch(double now, RequestSource& source,
                                  ServerReport& report) {
  handle_dispatch(scheduler_.dispatch_ready(now, device_free_, updater_.epochs()),
                  source, report);
}

void Server::answer_dropped(const Request& r, double now, const char* note,
                            RequestSource& source, ServerReport& report) {
  Response resp = response_to(r);
  resp.dropped = true;
  resp.epoch = updater_.epochs();
  resp.dispatch = resp.completion = now;
  if (config_.obs.trace != nullptr) {
    config_.obs.trace->stamp(resp.id, obs::Stage::kReply, resp.completion, 0,
                             note);
  }
  report.makespan = std::max(report.makespan, resp.completion);
  source.on_complete(resp);
  report.responses.push_back(std::move(resp));
}

void Server::submit(const Request& r, RequestSource& source,
                    ServerReport& report) {
  report.queue_depth.add(static_cast<double>(scheduler_.depth()));
  const std::size_t c = qos::index(r.klass);

  // Per-tenant token buckets gate the queue: a tenant pushing past its
  // provisioned rate is answered dropped before it can displace anyone.
  if (admission_.throttling() && !admission_.admit(r.tenant, r.arrival)) {
    ++report.dropped;
    ++report.throttled;
    ++report.class_dropped[c];
    ++report.class_throttled[c];
    if (class_metrics_[c].dropped != nullptr) {
      class_metrics_[c].dropped->inc();
      class_metrics_[c].throttled->inc();
    }
    answer_dropped(r, r.arrival, "throttled", source, report);
    return;
  }

  const BatchScheduler::Admit a = scheduler_.admit(r);
  if (a) {
    ++report.admitted;
    ++report.class_admitted[c];
    if (a.evicted.has_value()) {
      // The evicted request *was* admitted (its admission already
      // counted); overload policy now answers it dropped — that is a
      // shed, keeping arrivals == admitted + dropped intact.
      const std::size_t ec = qos::index(a.evicted->klass);
      ++report.shed;
      ++report.class_shed[ec];
      if (class_metrics_[ec].shed != nullptr) class_metrics_[ec].shed->inc();
      answer_dropped(*a.evicted, r.arrival, "evicted", source, report);
    }
    return;
  }
  ++report.dropped;
  ++report.class_dropped[c];
  if (class_metrics_[c].dropped != nullptr) class_metrics_[c].dropped->inc();
  answer_dropped(r, r.arrival, "rejected", source, report);
}

double Server::next_epoch_time(double now) const {
  if (updater_.buffered() == 0) return kNever;
  // One staging buffer: in the overlapped modes the next epoch cannot
  // start to build (or patch) until the in-flight one commits.
  if (config_.epoch.mode != EpochMode::kQuiesce && updater_.inflight())
    return kNever;
  return updater_.size_ready() ? now : updater_.next_deadline();
}

void Server::epoch_begin(double now, RequestSource& source,
                         ServerReport& report) {
  if (config_.epoch.mode == EpochMode::kQuiesce) {
    run_epoch(now, source, report);
    return;
  }
  // Overlap/incremental: start the background build (or in-place patch);
  // queries keep flowing against the live image until the commit.
  updater_.stage(now);
}

double Server::next_swap_time() const {
  if (!updater_.inflight()) return kNever;
  // The swap lands on a batch boundary: the earliest instant the staged
  // image is uploaded AND the device is between batches.
  return std::max(updater_.staged().ready, device_free_);
}

void Server::epoch_commit(double now, RequestSource& source,
                          ServerReport& report) {
  // The swap itself is a pointer flip on the device: no device time
  // beyond the instant — that is the whole point of the double buffer.
  account_epoch(updater_.commit(now), source, report);
  at_swap_boundary(now);
}

std::pair<unsigned, unsigned> Server::effective_query_knobs() const {
  return {scheduler_.group_size(), scheduler_.sort_bits()};
}

void Server::install_query_knobs(const Tunables& t) {
  scheduler_.set_query_knobs(t.group_size, t.sort_bits);
}

void Server::install_tunables(const Tunables& t, double now) {
  t.validate(config_);
  scheduler_.set_batch_knobs(t.max_batch, t.max_wait);
  updater_.set_apply_threads(t.apply_threads);
  if (updater_.inflight()) {
    // Swap-boundary contract: the in-flight epoch's queries must keep
    // dispatching with the knobs they were admitted under; the image
    // knobs land with its commit.
    pending_query_ = t;
  } else {
    pending_query_.reset();
    install_query_knobs(t);
  }
  (void)now;
}

void Server::at_swap_boundary(double now) {
  if (pending_query_.has_value()) {
    install_query_knobs(*pending_query_);
    pending_query_.reset();
  }
  if (tuner() != nullptr) {
    const auto rec = index_.recommend_query_knobs();
    tuner()->observe_profile(now, rec.group_size, rec.sort_bits);
  }
}

void Server::final_drain(double now, RequestSource& source,
                         ServerReport& report) {
  while (!scheduler_.empty()) {
    handle_dispatch(scheduler_.dispatch_ready(std::max(now, device_free_),
                                              device_free_, updater_.epochs()),
                    source, report);
  }
  if (updater_.inflight()) {
    const double swap_at =
        std::max({now, updater_.staged().ready, device_free_});
    epoch_commit(swap_at, source, report);
  }
  // Leftover updates at stream end: nothing is left to overlap with, so
  // both modes close out with a quiesce-style final epoch.
  if (updater_.buffered() > 0)
    run_epoch(std::max(now, device_free_), source, report);
}

void Server::finish_run(ServerReport& report) {
  report.faults = injector_.report();
  if (durability_ != nullptr) {
    report.log_batches = durability_->log_batches();
    report.snapshots_written = durability_->snapshots_written();
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->gauge("persist_log_batches").set(
          static_cast<double>(report.log_batches));
      config_.obs.metrics->gauge("persist_snapshots_written").set(
          static_cast<double>(report.snapshots_written));
    }
  }
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->gauge("serve_makespan_seconds").set(report.makespan);
    config_.obs.metrics->gauge("serve_busy_seconds").set(report.busy_seconds);
  }
}

}  // namespace harmonia::serve
