#include "serve/server.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "common/expect.hpp"

namespace harmonia::serve {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

void ServerReport::check_invariants() const {
  HARMONIA_CHECK_MSG(arrivals == admitted + dropped,
                     "serving accounting broken: arrivals=" << arrivals
                         << " != admitted=" << admitted
                         << " + dropped=" << dropped);
  HARMONIA_CHECK_MSG(
      admitted == completed + shed + update_requests,
      "serving accounting broken: admitted=" << admitted
          << " != completed=" << completed << " + shed=" << shed
          << " + update_requests=" << update_requests);
  HARMONIA_CHECK_MSG(responses.size() == arrivals,
                     "serving accounting broken: " << responses.size()
                         << " responses for " << arrivals << " arrivals");
  HARMONIA_CHECK_MSG(latency.count() == completed,
                     "serving accounting broken: " << latency.count()
                         << " latency samples for " << completed
                         << " completions");
}

Server::Server(HarmoniaIndex& index, const ServerConfig& config)
    : index_(index),
      config_(config),
      scheduler_(index, config.link, config.batch),
      updater_(index, config.link, config.epoch),
      injector_(config.faults, config.mitigation, 1) {
  for (const fault::FaultEvent& e : config.faults.events) {
    HARMONIA_CHECK_MSG(e.kind != fault::FaultKind::kShardLost,
                       "shard-lost faults need a ShardedServer");
  }
  if (injector_.active()) {
    scheduler_.set_fault_context(&injector_, 0);
    updater_.set_fault_context(&injector_, 0);
  }
  if (config_.obs.active()) {
    scheduler_.set_observer(config_.obs, 0);
    updater_.set_observer(config_.obs, 0);
    injector_.set_observer(config_.obs);
  }
}

void Server::handle_dispatch(BatchScheduler::Dispatch d, RequestSource& source,
                             ServerReport& report) {
  device_free_ = d.finish;
  ++report.batches;
  report.batch_size.add(static_cast<double>(d.batch_size));
  report.busy_seconds += d.service_seconds();
  for (Response& resp : d.responses) {
    if (resp.dropped) {
      ++report.shed;  // retry budget exhausted: admitted but not served
    } else {
      ++report.completed;
      report.latency.add(resp.latency());
      report.queue_delay.add(resp.queue_delay());
    }
    if (config_.obs.trace != nullptr) {
      config_.obs.trace->stamp(resp.id, obs::Stage::kReply, resp.completion, 0,
                               resp.dropped ? "shed" : std::string{});
    }
    report.makespan = std::max(report.makespan, resp.completion);
    source.on_complete(resp);
    report.responses.push_back(std::move(resp));
  }
}

void Server::run_epoch(double at, RequestSource& source, ServerReport& report) {
  // Quiesce: every batch admitted before the epoch trigger is served by
  // the pre-epoch tree. (They dispatch now; the device serializes them
  // ahead of the update application.)
  while (!scheduler_.empty()) {
    handle_dispatch(scheduler_.dispatch_ready(at, device_free_, updater_.epochs()),
                    source, report);
  }
  auto e = updater_.apply(at, device_free_);
  device_free_ = e.finish;
  ++report.epochs;
  report.updates_applied += e.stats.total_ops();
  report.updates_failed += e.stats.failed;
  report.busy_seconds += e.finish - e.start;
  for (Response& resp : e.responses) {
    report.makespan = std::max(report.makespan, resp.completion);
    source.on_complete(resp);
    report.responses.push_back(std::move(resp));
  }
}

ServerReport Server::run(RequestSource& source) {
  ServerReport report;
  double now = 0.0;

  while (true) {
    const Request* next = source.peek();
    const double t_arrival = next ? next->arrival : kInf;

    // A batch dispatches when BOTH its trigger (size reached, or oldest
    // member hit the deadline) has fired AND the device is free. Until
    // then its members stay in the bounded queue — that is what turns
    // device saturation into backpressure at admission instead of an
    // unbounded in-flight backlog.
    double t_batch = kInf;
    if (!scheduler_.empty()) {
      const double trigger =
          scheduler_.size_ready() ? now : scheduler_.next_deadline();
      t_batch = std::max(trigger, device_free_);
    }
    const double t_epoch =
        updater_.buffered() == 0
            ? kInf
            : (updater_.size_ready() ? now : updater_.next_deadline());

    if (t_arrival == kInf && t_batch == kInf && t_epoch == kInf) {
      // Stream exhausted and no armed trigger (possible only with
      // infinite deadlines): final drain — queries first, then leftovers
      // of the update buffer as a last epoch.
      while (!scheduler_.empty()) {
        handle_dispatch(scheduler_.dispatch_ready(std::max(now, device_free_),
                                                  device_free_, updater_.epochs()),
                        source, report);
      }
      if (updater_.buffered() > 0)
        run_epoch(std::max(now, device_free_), source, report);
      if (!source.peek()) break;  // on_complete may have injected arrivals
      continue;
    }

    if (t_arrival <= t_batch && t_arrival <= t_epoch) {
      now = t_arrival;
      const Request r = source.pop();
      ++report.arrivals;
      if (r.kind == RequestKind::kUpdate) {
        ++report.admitted;
        ++report.update_requests;
        updater_.buffer(r);  // size trigger fires via t_epoch next round
      } else {
        report.queue_depth.add(static_cast<double>(scheduler_.depth()));
        if (!scheduler_.admit(r)) {
          ++report.dropped;
          Response resp;
          resp.id = r.id;
          resp.kind = r.kind;
          resp.dropped = true;
          resp.epoch = updater_.epochs();
          resp.arrival = resp.dispatch = resp.completion = r.arrival;
          resp.value = kNotFound;
          if (config_.obs.trace != nullptr) {
            config_.obs.trace->stamp(resp.id, obs::Stage::kReply,
                                     resp.completion, 0, "rejected");
          }
          report.makespan = std::max(report.makespan, resp.completion);
          source.on_complete(resp);
          report.responses.push_back(std::move(resp));
        } else {
          ++report.admitted;
        }
      }
    } else if (t_batch <= t_epoch) {
      now = t_batch;
      handle_dispatch(scheduler_.dispatch_ready(now, device_free_, updater_.epochs()),
                      source, report);
    } else {
      now = t_epoch;
      run_epoch(now, source, report);
    }
  }
  report.faults = injector_.report();
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->gauge("serve_makespan_seconds").set(report.makespan);
    config_.obs.metrics->gauge("serve_busy_seconds").set(report.busy_seconds);
  }
  report.check_invariants();
  return report;
}

ServerReport Server::run(std::span<const Request> requests) {
  VectorSource source(std::vector<Request>(requests.begin(), requests.end()));
  return run(source);
}

}  // namespace harmonia::serve
