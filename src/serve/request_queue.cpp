#include "serve/request_queue.hpp"

namespace harmonia::serve {

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kPoint: return "point";
    case RequestKind::kRange: return "range";
    case RequestKind::kUpdate: return "update";
  }
  return "?";
}

bool RequestQueue::try_push(const Request& r) {
  if (pending_.size() >= capacity_) {
    ++rejected_;
    return false;
  }
  pending_.push_back(r);
  ++admitted_;
  return true;
}

Request RequestQueue::pop() {
  Request r = pending_.front();
  pending_.pop_front();
  return r;
}

}  // namespace harmonia::serve
