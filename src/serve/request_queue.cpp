#include "serve/request_queue.hpp"

namespace harmonia::serve {

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kPoint: return "point";
    case RequestKind::kRange: return "range";
    case RequestKind::kUpdate: return "update";
    case RequestKind::kScan: return "scan";
  }
  return "?";
}

bool RequestQueue::try_push(const Request& r) {
  if (pending_.size() >= capacity_) {
    ++rejected_;
    return false;
  }
  pending_.push_back(r);
  ++admitted_;
  return true;
}

Request RequestQueue::pop() {
  Request r = pending_.front();
  pending_.pop_front();
  return r;
}

Request RequestQueue::pop_back() {
  Request r = pending_.back();
  pending_.pop_back();
  return r;
}

}  // namespace harmonia::serve
