// Deadline-driven dynamic batching: the piece inference servers add
// between a request stream and a batch-oriented accelerator.
//
// Queries wait in kind x class lanes: one lane per request kind (point /
// range / scan) and priority class, with one bounded admission budget per
// kind shared across its classes. A lane's batch closes on whichever
// fires first:
//   size trigger     : the lane holds max_batch requests;
//   deadline trigger : the lane's oldest request has waited
//                      max_wait * the class's deadline factor.
// Among lanes due at the same instant the scheduler picks weighted-fair:
// the eligible lane whose class has the smallest virtual time
// (service/weight, qos/wfq.hpp), so under saturation dispatch slots
// divide by class weight. When a kind's budget is full, an arriving
// request may evict the newest queued request of a strictly lower class
// (lowest class first) — the evicted request is answered dropped and
// accounted as shed. With QoS disabled (the default config) single-class
// streams behave bit-identically to the pre-QoS two-lane scheduler.
//
// A closed batch is dispatched through the PCIe pipeline scheduler
// (`pipelined_search` / the device range kernel), starting when both the
// batch is closed and the device is free; every member request completes
// when the batch's results finish downloading.
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/expect.hpp"
#include "fault/injector.hpp"
#include "harmonia/index.hpp"
#include "harmonia/pipeline.hpp"
#include "obs/observer.hpp"
#include "qos/admission.hpp"
#include "qos/wfq.hpp"
#include "serve/request_queue.hpp"

namespace harmonia::serve {

struct BatchConfig {
  /// Size trigger: close a lane's batch at this many requests.
  std::size_t max_batch = 2048;
  /// Deadline trigger: close when the oldest request has waited this long
  /// (virtual seconds; stretched per class by qos deadline factors).
  double max_wait = 200e-6;
  /// Bounded admission per kind (shared across that kind's class lanes);
  /// requests beyond it are rejected (backpressure) or — with QoS on —
  /// evict a lower-class request, so waiting never grows unboundedly
  /// under overload.
  std::size_t queue_capacity = 1 << 14;
  /// Per-query result cap for the device range kernel (scans clamp their
  /// scan_n to this too).
  unsigned max_range_results = 64;
  /// Chunking + query options for dispatch. NTG auto-profiling is off by
  /// default: re-profiling every small online batch would dominate its
  /// cost; servers pick a group size once (or pin one here).
  PipelineOptions pipeline{.chunk_size = 1 << 16,
                           .overlap = true,
                           .query_options = {.auto_ntg = false}};
};

class BatchScheduler {
 public:
  BatchScheduler(HarmoniaIndex& index, const TransferModel& link,
                 const BatchConfig& config,
                 const qos::QosConfig& qos = qos::QosConfig{});

  /// Outcome of one admission. Converts to bool (admitted?) so legacy
  /// call sites keep reading naturally; `evicted` carries the
  /// lower-class request shed to make room (the caller answers it
  /// dropped and books it as shed — it *was* admitted).
  struct Admit {
    bool admitted = false;
    std::optional<Request> evicted;
    operator bool() const { return admitted; }  // NOLINT(google-explicit-*)
  };

  /// Admits a point/range/scan request into its kind x class lane.
  /// Not admitted = backpressure (no eviction candidate was available).
  Admit admit(const Request& r);

  std::size_t depth() const;
  bool empty() const { return depth() == 0; }

  /// Free admission slots in a kind's budget. The sharded fan-out path
  /// probes every involved shard before splitting a straddling range or
  /// scan, so the split is admitted all-or-nothing.
  std::size_t free_slots(RequestKind kind) const;
  /// Slots an arrival of (kind, klass) could claim: free budget plus
  /// queued strictly-lower-class requests it may evict (QoS on).
  std::size_t admissible_slots(RequestKind kind, qos::Priority klass) const;

  /// Earliest deadline over all lanes; +inf when idle.
  double next_deadline() const;
  /// True when some lane reached max_batch and must close now.
  bool size_ready() const;

  struct Dispatch {
    std::vector<Response> responses;
    RequestKind kind = RequestKind::kPoint;
    /// Batches are single-class: the lane's priority class.
    qos::Priority klass = qos::Priority::kGold;
    std::size_t batch_size = 0;
    /// Batch close time (trigger), device start, and download-done time.
    double close = 0.0;
    double start = 0.0;
    double finish = 0.0;
    /// Fault path: dispatch tries consumed (1 = clean first try) and
    /// whether the retry budget ran out (responses answer dropped).
    unsigned attempts = 1;
    bool shed = false;
    double service_seconds() const { return finish - start; }
  };

  /// Closes and dispatches the most urgent lane: among size-full lanes
  /// the one whose class has the smallest weighted-fair virtual time,
  /// otherwise the lane with the earliest (class-stretched) deadline.
  /// Dispatch starts at max(close_time, device_free). Requires !empty().
  Dispatch dispatch_ready(double close_time, double device_free, unsigned epoch);

  std::uint64_t admitted() const;
  std::uint64_t rejected() const;
  /// Requests shed by QoS eviction, per class.
  const std::array<std::uint64_t, qos::kNumClasses>& evicted_by_class() const {
    return evicted_;
  }

  /// Arms the fault path: dispatches on this scheduler consult `injector`
  /// as shard `shard` for slowdown windows and transient failures. A null
  /// or inactive injector keeps dispatch arithmetic bit-identical to the
  /// fault-free build.
  void set_fault_context(fault::FaultInjector* injector, unsigned shard) {
    injector_ = injector;
    shard_ = shard;
  }

  /// Drains every lane (fencing a lost shard re-routes its queued work).
  /// Returned in arrival order; admission counters are unchanged.
  std::vector<Request> evict_all();

  /// Runtime batch knobs (serve/tunables.hpp): the backend installs them
  /// between dispatches, so no formed batch changes shape mid-flight.
  /// Queued requests simply see the new triggers; the lanes' admission
  /// capacity is construction-time and never moves (max_batch must stay
  /// within it — the Tunables validation enforces that upstream).
  void set_batch_knobs(std::size_t max_batch, double max_wait) {
    HARMONIA_CHECK(max_batch > 0 && max_batch <= config_.queue_capacity);
    HARMONIA_CHECK(max_wait > 0.0);
    config_.max_batch = max_batch;
    config_.max_wait = max_wait;
  }
  /// Runtime image/PSA knobs for dispatched batches. Callers install
  /// these only at an epoch-swap boundary (serve/tunables.hpp) — the
  /// scheduler itself just forwards them to every later dispatch.
  void set_query_knobs(unsigned group_size, unsigned sort_bits) {
    config_.pipeline.query_options.group_size = group_size;
    config_.pipeline.query_options.psa_override_bits = sort_bits;
  }
  unsigned group_size() const {
    return config_.pipeline.query_options.group_size;
  }
  unsigned sort_bits() const {
    return config_.pipeline.query_options.psa_override_bits;
  }

  /// Attaches metrics + lifecycle tracing as shard `shard` (0 for a
  /// single-device server). Counter/histogram handles resolve once here
  /// (the registry's cold path); admit/dispatch then increment through
  /// cached pointers — lock-free on the hot path. Admitted requests are
  /// stamped at queue-enter, batch-form, and dispatch; the server stamps
  /// reply when it delivers the response.
  void set_observer(const obs::Observer& obs, unsigned shard);

 private:
  /// Lane kinds that queue here (updates buffer in the epoch updater).
  static constexpr std::size_t kKinds = 3;  // point, range, scan
  static std::size_t kind_index(RequestKind kind);
  std::size_t lane_at(std::size_t kind, std::size_t klass) const {
    return kind * qos::kNumClasses + klass;
  }
  RequestQueue& lane(std::size_t kind, std::size_t klass) {
    return lanes_[lane_at(kind, klass)];
  }
  const RequestQueue& lane(std::size_t kind, std::size_t klass) const {
    return lanes_[lane_at(kind, klass)];
  }
  /// Queued requests across a kind's class lanes (its budget use).
  std::size_t kind_depth(std::size_t kind) const;
  /// This lane's deadline: oldest arrival + class-stretched max_wait.
  double lane_deadline(std::size_t kind, std::size_t klass) const;

  Dispatch dispatch_lane(std::size_t kind, std::size_t klass, double close_time,
                         double device_free, unsigned epoch);
  double faulted_finish(double start, double base_service,
                        double transfer_seconds, Dispatch& d);
  /// Metrics + trace stamps for one dispatched batch.
  void observe_dispatch(const Dispatch& d, std::span<const Request> members);

  /// Per-kind cached metric handles (null when unobserved).
  struct LaneMetrics {
    obs::Counter* admitted = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* queries = nullptr;
  };

  HarmoniaIndex& index_;
  TransferModel link_;
  BatchConfig config_;
  qos::QosConfig qos_;
  qos::WeightedFair wfq_;
  /// kKinds x kNumClasses bounded lanes, kind-major (lane_at).
  std::vector<RequestQueue> lanes_;
  std::array<std::uint64_t, qos::kNumClasses> evicted_{};
  fault::FaultInjector* injector_ = nullptr;
  unsigned shard_ = 0;
  obs::Observer obs_;
  std::array<LaneMetrics, kKinds> kind_metrics_{};
  std::array<obs::Counter*, qos::kNumClasses> evicted_metrics_{};
  obs::LatencyHistogram* batch_size_hist_ = nullptr;
  obs::LatencyHistogram* service_hist_ = nullptr;
  obs::LatencyHistogram* queue_wait_hist_ = nullptr;
};

}  // namespace harmonia::serve
