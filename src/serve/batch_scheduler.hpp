// Deadline-driven dynamic batching: the piece inference servers add
// between a request stream and a batch-oriented accelerator.
//
// Point and range queries wait in per-kind lanes (one bounded admission
// budget across both). A lane's batch closes on whichever fires first:
//   size trigger     : the lane holds max_batch requests;
//   deadline trigger : the lane's oldest request has waited max_wait.
// A closed batch is dispatched through the PCIe pipeline scheduler
// (`pipelined_search` / the device range kernel), starting when both the
// batch is closed and the device is free; every member request completes
// when the batch's results finish downloading.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "fault/injector.hpp"
#include "harmonia/index.hpp"
#include "harmonia/pipeline.hpp"
#include "obs/observer.hpp"
#include "serve/request_queue.hpp"

namespace harmonia::serve {

struct BatchConfig {
  /// Size trigger: close a lane's batch at this many requests.
  std::size_t max_batch = 2048;
  /// Deadline trigger: close when the oldest request has waited this long
  /// (virtual seconds).
  double max_wait = 200e-6;
  /// Bounded admission per lane; requests beyond it are rejected
  /// (backpressure), so waiting never grows unboundedly under overload.
  std::size_t queue_capacity = 1 << 14;
  /// Per-query result cap for the device range kernel.
  unsigned max_range_results = 64;
  /// Chunking + query options for dispatch. NTG auto-profiling is off by
  /// default: re-profiling every small online batch would dominate its
  /// cost; servers pick a group size once (or pin one here).
  PipelineOptions pipeline{.chunk_size = 1 << 16,
                           .overlap = true,
                           .query_options = {.auto_ntg = false}};
};

class BatchScheduler {
 public:
  BatchScheduler(HarmoniaIndex& index, const TransferModel& link,
                 const BatchConfig& config);

  /// Admits a point/range request into its lane. False = backpressure.
  bool admit(const Request& r);

  std::size_t depth() const { return point_.size() + range_.size(); }
  bool empty() const { return point_.empty() && range_.empty(); }

  /// Free admission slots in a lane. The sharded fan-out path probes
  /// every involved shard before splitting a straddling range, so the
  /// split is admitted all-or-nothing.
  std::size_t free_slots(RequestKind kind) const;

  /// Earliest deadline over both lanes; +inf when idle.
  double next_deadline() const;
  /// True when some lane reached max_batch and must close now.
  bool size_ready() const;

  struct Dispatch {
    std::vector<Response> responses;
    RequestKind kind = RequestKind::kPoint;
    std::size_t batch_size = 0;
    /// Batch close time (trigger), device start, and download-done time.
    double close = 0.0;
    double start = 0.0;
    double finish = 0.0;
    /// Fault path: dispatch tries consumed (1 = clean first try) and
    /// whether the retry budget ran out (responses answer dropped).
    unsigned attempts = 1;
    bool shed = false;
    double service_seconds() const { return finish - start; }
  };

  /// Closes and dispatches the most urgent lane: a size-full lane first,
  /// otherwise the lane with the earliest deadline. Dispatch starts at
  /// max(close_time, device_free). Requires !empty().
  Dispatch dispatch_ready(double close_time, double device_free, unsigned epoch);

  std::uint64_t admitted() const { return point_.admitted() + range_.admitted(); }
  std::uint64_t rejected() const { return point_.rejected() + range_.rejected(); }

  /// Arms the fault path: dispatches on this scheduler consult `injector`
  /// as shard `shard` for slowdown windows and transient failures. A null
  /// or inactive injector keeps dispatch arithmetic bit-identical to the
  /// fault-free build.
  void set_fault_context(fault::FaultInjector* injector, unsigned shard) {
    injector_ = injector;
    shard_ = shard;
  }

  /// Drains both lanes (fencing a lost shard re-routes its queued work).
  /// Returned in arrival order; admission counters are unchanged.
  std::vector<Request> evict_all();

  /// Attaches metrics + lifecycle tracing as shard `shard` (0 for a
  /// single-device server). Counter/histogram handles resolve once here
  /// (the registry's cold path); admit/dispatch then increment through
  /// cached pointers — lock-free on the hot path. Admitted requests are
  /// stamped at queue-enter, batch-form, and dispatch; the server stamps
  /// reply when it delivers the response.
  void set_observer(const obs::Observer& obs, unsigned shard);

 private:
  Dispatch dispatch_point(double close_time, double device_free, unsigned epoch);
  Dispatch dispatch_range(double close_time, double device_free, unsigned epoch);
  double faulted_finish(double start, double base_service,
                        double transfer_seconds, Dispatch& d);
  /// Metrics + trace stamps for one dispatched batch.
  void observe_dispatch(const Dispatch& d, std::span<const Request> members);

  /// Per-lane cached metric handles (null when unobserved).
  struct LaneMetrics {
    obs::Counter* admitted = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* queries = nullptr;
  };

  HarmoniaIndex& index_;
  TransferModel link_;
  BatchConfig config_;
  RequestQueue point_;
  RequestQueue range_;
  fault::FaultInjector* injector_ = nullptr;
  unsigned shard_ = 0;
  obs::Observer obs_;
  LaneMetrics point_metrics_;
  LaneMetrics range_metrics_;
  obs::LatencyHistogram* batch_size_hist_ = nullptr;
  obs::LatencyHistogram* service_hist_ = nullptr;
  obs::LatencyHistogram* queue_wait_hist_ = nullptr;
};

}  // namespace harmonia::serve
