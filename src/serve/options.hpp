// ServeOptions — the one validated option surface of the serving stack.
//
// Every layer used to carry its own config struct (scheduler, epoch,
// link, faults, mitigation, obs) and every entry point re-validated an
// ad-hoc subset. ServeOptions keeps the per-layer structs (they are the
// layers' natural vocabulary) but owns the composition: one struct to
// fill, one validate() that rejects inconsistent combinations up front,
// and one CLI entry point (add_flags/from_cli, built on common/cli) that
// every tool and bench shares instead of re-parsing flags by hand.
//
// ServeOptions holds the construction-time half of the surface; the
// runtime-adjustable knobs additionally travel as a serve::Tunables
// snapshot (serve/tunables.hpp) that Backend exposes via
// tunables()/apply_tunables() — see docs/serving.md#autotuner.
#pragma once

#include "common/cli.hpp"
#include "fault/injector.hpp"
#include "harmonia/pipeline.hpp"
#include "obs/observer.hpp"
#include "persist/durability.hpp"
#include "qos/admission.hpp"
#include "serve/batch_scheduler.hpp"
#include "serve/epoch_updater.hpp"
#include "serve/tunables.hpp"

namespace harmonia::serve {

/// Hot-range splitting + live resharding knobs (sharded backends only,
/// docs/sharding.md#live-resharding). Detection is windowed: every
/// `detect_every` virtual seconds the per-shard routed-query window plus
/// current queue depth is compared against the fleet mean; a shard
/// hotter than `hot_factor` x the mean (with at least
/// `min_window_queries` routed in the window) triggers a split — the hot
/// shard's key range is cut at its median and one half migrates to the
/// colder adjacent neighbor through the staged-image machinery.
struct ReshardConfig {
  bool split_hot = false;
  double detect_every = 1e-3;
  double hot_factor = 2.0;
  /// Migrations allowed per run (0 disables even with split_hot set).
  unsigned max_migrations = 4;
  /// Minimum routed queries in a detection window before a shard may be
  /// called hot — keeps idle-start windows from triggering on noise.
  std::uint64_t min_window_queries = 256;
};

struct ServeOptions {
  /// Replica group size K: every shard's committed image is served by K
  /// interchangeable device replicas (docs/sharding.md#replica-groups).
  /// 1 = unreplicated, bit-identical to the pre-replica behaviour.
  unsigned replicas = 1;
  ReshardConfig reshard;
  /// Per-device scheduler configuration (every shard gets its own lanes
  /// with this capacity, so aggregate admission scales with shards).
  BatchConfig batch;
  /// Epoch trigger thresholds and the epoch mode (quiesce vs the
  /// double-buffered overlap pipeline, docs/serving.md#epoch-pipeline).
  EpochConfig epoch;
  TransferModel link;
  /// Deterministic fault schedule (empty = fault-free, bit-identical to a
  /// build without the fault layer) and the mitigation knobs.
  fault::FaultPlan faults;
  fault::MitigationConfig mitigation;
  /// Optional metrics + request-lifecycle tracing (docs/observability.md).
  /// Both pointers null = zero-overhead, bit-identical to an unobserved
  /// run. The caller owns the registry/recorder.
  obs::Observer obs;
  /// Multi-tenant QoS policy: class weights/deadline stretches for batch
  /// formation, overload eviction order, and per-tenant token-bucket
  /// throttling (docs/serving.md#multi-tenant-qos). Default = inert.
  qos::QosConfig qos;
  /// Durability knobs (docs/persistence_format.md): snapshot directory,
  /// cadence, retention, and whether construction cold-starts from disk.
  /// Default (empty dir) = no persistence, bit-identical to before.
  persist::DurabilityConfig persist;
  /// Wired by the owner of the durability domain (ServingStack, or a
  /// test). Non-owning; null = no durable writes even when persist.dir
  /// is set (the backend only ever writes through this pointer).
  persist::DurabilityDomain* durability = nullptr;
  /// Closed-loop tuning controller (docs/serving.md#autotuner): the
  /// backend ticks it on the virtual clock and installs its decisions at
  /// the knobs' safe points. Non-owning (the tool or test owns the
  /// tune::Autotuner); null = all knobs stay at their configured values.
  TuneController* tuner = nullptr;

  /// Rejects inconsistent combinations with ContractViolation before any
  /// serving state is built: queue capacity below the batch trigger;
  /// empty epoch thresholds, non-positive apply threads, negative
  /// modeled op costs, a delta mode without overlay capacity;
  /// non-positive link bandwidth or negative latency; a mitigation with
  /// no retry budget, negative backoffs, or degraded costs; a replica
  /// group outside [1, 8] or without the sharded path to ride; hot-range
  /// splitting with a non-positive cadence, a hot factor <= 1, or fewer
  /// than 2 shards; the QoS policy's own validate(); persistence
  /// recovery without a snapshot directory or zero retention; the
  /// initial tunables snapshot (group size / sort bits bounds); and
  /// fault events that do not fit the topology (every event's shard must
  /// exist, shard-lost needs a sharded or replicated topology,
  /// replica-lost needs a group, process-restart never reaches a
  /// backend).
  void validate(unsigned num_shards = 1) const;

  /// Declares the serving flags (batching, epochs, link, faults) on a
  /// common/cli parser. Pair with from_cli: this is the single CLI entry
  /// point the tools and ext benches share.
  static void add_flags(Cli& cli);
  /// Builds options from flags declared by add_flags. Throws
  /// ContractViolation on a malformed --faults spec or --epoch-mode.
  static ServeOptions from_cli(const Cli& cli);
};

}  // namespace harmonia::serve
