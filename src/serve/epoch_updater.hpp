// Epoch-based updates: the serving-side wrapper around the paper's
// phase-based usage model (§3.2).
//
// Online update requests are buffered, not applied inline: the device
// image must stay frozen while query batches are in flight. When the
// buffer reaches max_buffered (or its oldest update has waited max_wait),
// the server *quiesces* — flushes every pending query batch — and the
// updater applies the whole buffer through the Algorithm-1 CPU updater
// (`HarmoniaIndex::update_batch`), which also rebuilds the device image.
// The virtual clock charges a modeled CPU apply cost plus the PCIe
// resync of the full image; admission reopens when the resync completes.
// Queries dispatched before an epoch observe the pre-epoch tree; queries
// dispatched after observe it with the whole epoch applied — there are
// no torn states, which is what makes the serving path testable against
// a snapshot oracle.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "fault/injector.hpp"
#include "harmonia/index.hpp"
#include "harmonia/pipeline.hpp"
#include "obs/observer.hpp"
#include "serve/request.hpp"

namespace harmonia::serve {

struct EpochConfig {
  /// Size trigger: apply an epoch once this many updates are buffered.
  std::size_t max_buffered = 4096;
  /// Deadline trigger on the oldest buffered update; +inf = size-only
  /// (leftovers still apply in the final drain).
  double max_wait = std::numeric_limits<double>::infinity();
  /// Worker threads for the Algorithm-1 batch apply.
  unsigned apply_threads = 1;
  /// Modeled CPU cost per applied op on the virtual clock. Wall-clock
  /// timings would work but would make latency traces nondeterministic;
  /// a per-op charge keeps the whole simulation replayable. The default
  /// is in the range the paper's 28-core Xeon sustains.
  double seconds_per_op = 250e-9;
};

class EpochUpdater {
 public:
  EpochUpdater(HarmoniaIndex& index, const TransferModel& link,
               const EpochConfig& config);

  void buffer(const Request& r);
  std::size_t buffered() const { return pending_.size(); }
  bool size_ready() const { return pending_.size() >= config_.max_buffered; }
  /// +inf when nothing is buffered or max_wait is +inf.
  double next_deadline() const;

  /// Update epochs applied so far.
  unsigned epochs() const { return epochs_; }

  struct EpochResult {
    std::vector<Response> responses;  // one per buffered update
    unsigned epoch = 0;               // 1-based ordinal of this epoch
    double start = 0.0;
    double finish = 0.0;
    double apply_seconds = 0.0;   // modeled CPU apply time
    double resync_seconds = 0.0;  // modeled PCIe image re-upload
    UpdateStats stats;
  };

  /// Applies every buffered update as one epoch. The caller must have
  /// quiesced (dispatched all pending query batches) first; the epoch
  /// occupies [max(at, device_free), finish] on the device timeline.
  EpochResult apply(double at, double device_free);

  /// Arms the fault path for the post-epoch resync: slowdown windows
  /// scale the re-upload, armed corruption events damage the fresh image,
  /// and a CRC32 audit repairs (re-images) before admission reopens.
  void set_fault_context(fault::FaultInjector* injector, unsigned shard) {
    injector_ = injector;
    shard_ = shard;
  }

  /// Attaches metrics + tracing: each epoch bumps the epoch/op counters
  /// and observes apply/resync durations; every buffered update is
  /// stamped at queue-enter (on buffer) and dispatch/reply (on apply).
  void set_observer(const obs::Observer& obs, unsigned shard);

 private:
  HarmoniaIndex& index_;
  TransferModel link_;
  EpochConfig config_;
  std::vector<Request> pending_;
  unsigned epochs_ = 0;
  fault::FaultInjector* injector_ = nullptr;
  unsigned shard_ = 0;
  obs::Observer obs_;
  obs::Counter* epochs_total_ = nullptr;
  obs::Counter* ops_total_ = nullptr;
  obs::Counter* ops_failed_ = nullptr;
  obs::LatencyHistogram* apply_hist_ = nullptr;
  obs::LatencyHistogram* resync_hist_ = nullptr;
};

}  // namespace harmonia::serve
