// Epoch-based updates: the serving-side wrapper around the paper's
// phase-based usage model (§3.2), in one of two modes.
//
// Quiesce (the original path): online update requests are buffered; when
// the buffer reaches max_buffered (or its oldest update has waited
// max_wait), the server *quiesces* — flushes every pending query batch —
// and the updater applies the whole buffer through the Algorithm-1 CPU
// updater (`HarmoniaIndex::update_batch`), which also rebuilds the device
// image. The device is held through the CPU apply and the PCIe resync.
//
// Overlap (the double-buffered epoch pipeline, docs/serving.md): the
// trigger instead *stages* the epoch — the batch is applied to a shadow
// copy of the host tree and the resulting image N+1 uploads in the
// background — while queries keep dispatching against live image N. When
// the staged image is ready, an atomic swap at a batch boundary retires
// image N; the device never stalls for the build or the upload.
//
// Incremental (--epoch-mode delta, docs/serving.md#epoch-pipeline): the
// trigger first tries to *patch* the committed image in place — value
// updates and gap-absorbed inserts edit leaf records, structural ops land
// in the bounded device-side delta overlay — so only the dirty leaf
// records and overlay arrays cross PCIe at the swap instant. When gaps or
// the overlay exhaust, the epoch falls back to an overlap-style
// compaction that folds the overlay into a rebuilt image.
//
// In every mode queries observe a whole number of epochs — there are no
// torn states, which is what makes the serving path testable against a
// snapshot oracle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/expect.hpp"
#include "fault/injector.hpp"
#include "harmonia/index.hpp"
#include "harmonia/pipeline.hpp"
#include "obs/observer.hpp"
#include "persist/durability.hpp"
#include "serve/request.hpp"

namespace harmonia::serve {

/// How an epoch trigger treats the device (docs/serving.md#epoch-pipeline).
enum class EpochMode : std::uint8_t {
  /// Drain the scheduler, hold the device through apply + resync.
  kQuiesce,
  /// Stage the epoch on a shadow tree, upload in the background, swap
  /// atomically at a batch boundary; queries never stop.
  kOverlap,
  /// Incremental ("delta"): non-structural ops patch the committed image
  /// in place through the leaf gaps, structural ops land in the bounded
  /// device-side delta overlay; only the dirty leaf records + overlay
  /// arrays cross PCIe. When gaps or the overlay exhaust, the epoch falls
  /// back to an overlap-style compaction that folds the overlay into a
  /// rebuilt image. Queries never stop in either case.
  kIncremental,
};

struct EpochConfig {
  /// Size trigger: apply an epoch once this many updates are buffered.
  std::size_t max_buffered = 4096;
  /// Deadline trigger on the oldest buffered update; +inf = size-only
  /// (leftovers still apply in the final drain).
  double max_wait = std::numeric_limits<double>::infinity();
  /// Worker threads for the Algorithm-1 batch apply.
  unsigned apply_threads = 1;
  /// Modeled CPU cost per applied op on the virtual clock. Wall-clock
  /// timings would work but would make latency traces nondeterministic;
  /// a per-op charge keeps the whole simulation replayable. The default
  /// is in the range the paper's 28-core Xeon sustains.
  double seconds_per_op = 250e-9;
  /// Modeled CPU cost per op on the incremental patch path: an in-place
  /// leaf edit or a bounded overlay upsert — no shadow-tree copy, no
  /// Algorithm-1 lock traffic, so much cheaper than seconds_per_op.
  double seconds_per_patch_op = 50e-9;
  /// Delta-overlay bound (entries) installed on the index when mode is
  /// kIncremental; ignored otherwise.
  std::size_t overlay_capacity = 1024;
  /// kQuiesce preserves the original stall-the-world behaviour exactly.
  EpochMode mode = EpochMode::kQuiesce;
};

class EpochUpdater {
 public:
  EpochUpdater(HarmoniaIndex& index, const TransferModel& link,
               const EpochConfig& config);

  void buffer(const Request& r);
  std::size_t buffered() const { return pending_.size(); }
  bool size_ready() const { return pending_.size() >= config_.max_buffered; }
  /// +inf when nothing is buffered or max_wait is +inf.
  double next_deadline() const;

  /// Update epochs applied (committed) so far.
  unsigned epochs() const { return epochs_; }

  struct EpochResult {
    std::vector<Response> responses;  // one per buffered update
    unsigned epoch = 0;               // 1-based ordinal of this epoch
    double start = 0.0;
    double finish = 0.0;
    double apply_seconds = 0.0;   // modeled CPU build (Algorithm-1 apply)
    double resync_seconds = 0.0;  // modeled PCIe image (re-)upload
    /// Staged-ready to swap instant (0 in quiesce mode — there is no
    /// separate swap; admission reopens when the resync completes).
    double swap_wait_seconds = 0.0;
    /// Device time lost to this epoch: apply+resync in quiesce mode, 0 in
    /// overlap mode (the device serves through build and upload).
    double stall_seconds = 0.0;
    /// True when this epoch patched the committed image in place
    /// (incremental mode, gaps/overlay absorbed everything); false for
    /// every full-image epoch — quiesce, overlap, and incremental-mode
    /// compaction fallbacks alike.
    bool patch = false;
    UpdateStats stats;
  };

  /// Quiesce mode: applies every buffered update as one epoch. The caller
  /// must have drained all pending query batches first; the epoch
  /// occupies [max(at, device_free), finish] on the device timeline.
  EpochResult apply(double at, double device_free);

  /// Overlap mode: a staged epoch in flight between stage() and commit().
  struct Staged {
    unsigned epoch = 0;          // ordinal this epoch will commit as
    double trigger = 0.0;        // build start (the epoch trigger)
    double build_done = 0.0;     // CPU apply done; background upload starts
    double ready = 0.0;          // image uploaded + audited, swap-eligible
    double build_seconds = 0.0;
    double upload_seconds = 0.0;
    /// Incremental mode: this epoch is an in-place patch (commit flushes
    /// the queued leaf/overlay writes instead of swapping a new image).
    bool patch = false;
  };

  bool inflight() const { return staged_meta_.has_value(); }
  const Staged& staged() const { return *staged_meta_; }

  /// Starts the background pipeline for every buffered update: Algorithm-1
  /// apply on a shadow tree, then the staged image upload (slowdown
  /// windows stretch it; an armed corruption is caught by the pre-swap
  /// audit and costs one re-upload — the live image keeps serving either
  /// way). New updates arriving while this epoch is in flight buffer
  /// toward the next one. Requires !inflight() and buffered() > 0.
  const Staged& stage(double at);

  /// Atomic swap at `swap_at` (a batch boundary >= ready): installs the
  /// shadow tree and staged image as the live snapshot and answers the
  /// staged updates. The caller charges no device time — the swap is a
  /// pointer flip; the upload already happened in the background.
  EpochResult commit(double swap_at);

  /// Arms the fault path for the epoch image transfer (quiesce resync or
  /// staged background upload): slowdown windows scale it, armed
  /// corruption events trigger the CRC32 audit + re-image/re-upload.
  void set_fault_context(fault::FaultInjector* injector, unsigned shard) {
    injector_ = injector;
    shard_ = shard;
  }

  /// Runtime apply-threads knob (serve/tunables.hpp). Safe at any event
  /// boundary: an in-flight staged epoch computed its build time at
  /// stage(), so the change affects only epochs triggered afterwards.
  void set_apply_threads(unsigned threads) {
    HARMONIA_CHECK(threads > 0);
    config_.apply_threads = threads;
  }
  unsigned apply_threads() const { return config_.apply_threads; }

  /// Attaches the write-ahead durability sink: each epoch's batch is
  /// appended to `shard`'s update log at the trigger instant, *before*
  /// the apply/stage touches the in-memory index, so the on-disk log is
  /// never behind the committed state. Null (the default) = no logging.
  void set_durability(persist::ShardDurability* durability) { durability_ = durability; }

  /// Attaches metrics + tracing: each epoch bumps the epoch/op counters
  /// and observes build/upload/swap-wait/stall durations; every buffered
  /// update is stamped at queue-enter (on buffer) and dispatch/reply (on
  /// apply or commit). Overlap epochs additionally annotate build-start,
  /// upload-start, staged-ready, and the swap instant.
  void set_observer(const obs::Observer& obs, unsigned shard);

 private:
  std::vector<queries::UpdateOp> drain_ops(const std::vector<Request>& from) const;
  void observe_epoch(const EpochResult& e);
  Response make_update_response(const Request& r, const EpochResult& e) const;

  HarmoniaIndex& index_;
  TransferModel link_;
  EpochConfig config_;
  std::vector<Request> pending_;
  unsigned epochs_ = 0;
  /// Overlap mode: the epoch being built/uploaded in the background, and
  /// the update requests it will answer at the swap.
  std::optional<Staged> staged_meta_;
  HarmoniaIndex::StagedUpdate staged_update_;
  /// Incremental mode: stats of the in-flight patch epoch (the queued
  /// writes live inside the index until commit_patch).
  UpdateStats patch_stats_;
  std::vector<Request> staged_requests_;
  fault::FaultInjector* injector_ = nullptr;
  unsigned shard_ = 0;
  persist::ShardDurability* durability_ = nullptr;
  obs::Observer obs_;
  obs::Counter* epochs_total_ = nullptr;
  obs::Counter* ops_total_ = nullptr;
  obs::Counter* ops_failed_ = nullptr;
  obs::LatencyHistogram* apply_hist_ = nullptr;
  obs::LatencyHistogram* resync_hist_ = nullptr;
  obs::LatencyHistogram* swap_wait_hist_ = nullptr;
  obs::LatencyHistogram* stall_hist_ = nullptr;
  /// Patch-vs-compaction splits of build/upload (every epoch lands in
  /// exactly one pair; quiesce and overlap epochs book as compaction).
  obs::LatencyHistogram* patch_build_hist_ = nullptr;
  obs::LatencyHistogram* patch_upload_hist_ = nullptr;
  obs::LatencyHistogram* compaction_build_hist_ = nullptr;
  obs::LatencyHistogram* compaction_upload_hist_ = nullptr;
};

}  // namespace harmonia::serve
