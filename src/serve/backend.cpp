#include "serve/backend.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "common/expect.hpp"
#include "serve/options.hpp"

namespace harmonia::serve {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

std::uint64_t sum(const std::vector<std::uint64_t>& v) {
  return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
}
}  // namespace

void ServerReport::check_invariants() const {
  HARMONIA_CHECK_MSG(arrivals == admitted + dropped,
                     "serving accounting broken: arrivals=" << arrivals
                         << " != admitted=" << admitted
                         << " + dropped=" << dropped);
  HARMONIA_CHECK_MSG(
      admitted == completed + shed + update_requests,
      "serving accounting broken: admitted=" << admitted
          << " != completed=" << completed << " + shed=" << shed
          << " + update_requests=" << update_requests);
  HARMONIA_CHECK_MSG(responses.size() == arrivals,
                     "serving accounting broken: " << responses.size()
                         << " responses for " << arrivals << " arrivals");
  HARMONIA_CHECK_MSG(latency.count() == completed,
                     "serving accounting broken: " << latency.count()
                         << " latency samples for " << completed
                         << " completions");

  // Per-class splits must reconcile with the stream-level counters and
  // satisfy the same admission identities class-by-class.
  const auto csum = [](const std::array<std::uint64_t, qos::kNumClasses>& a) {
    return std::accumulate(a.begin(), a.end(), std::uint64_t{0});
  };
  HARMONIA_CHECK_MSG(csum(class_arrivals) == arrivals,
                     "class accounting broken: class arrivals sum to "
                         << csum(class_arrivals) << " but arrivals=" << arrivals);
  HARMONIA_CHECK_MSG(csum(class_admitted) == admitted,
                     "class accounting broken: class admissions sum to "
                         << csum(class_admitted) << " but admitted=" << admitted);
  HARMONIA_CHECK_MSG(csum(class_dropped) == dropped,
                     "class accounting broken: class drops sum to "
                         << csum(class_dropped) << " but dropped=" << dropped);
  HARMONIA_CHECK_MSG(csum(class_throttled) == throttled,
                     "class accounting broken: class throttles sum to "
                         << csum(class_throttled) << " but throttled="
                         << throttled);
  HARMONIA_CHECK_MSG(csum(class_completed) == completed,
                     "class accounting broken: class completions sum to "
                         << csum(class_completed) << " but completed="
                         << completed);
  HARMONIA_CHECK_MSG(csum(class_shed) == shed,
                     "class accounting broken: class sheds sum to "
                         << csum(class_shed) << " but shed=" << shed);
  HARMONIA_CHECK_MSG(csum(class_update_requests) == update_requests,
                     "class accounting broken: class update requests sum to "
                         << csum(class_update_requests) << " but update_requests="
                         << update_requests);
  for (std::size_t c = 0; c < qos::kNumClasses; ++c) {
    const char* name = qos::to_string(qos::priority_at(c));
    HARMONIA_CHECK_MSG(
        class_arrivals[c] == class_admitted[c] + class_dropped[c],
        "class accounting broken (" << name << "): arrivals="
            << class_arrivals[c] << " != admitted=" << class_admitted[c]
            << " + dropped=" << class_dropped[c]);
    HARMONIA_CHECK_MSG(
        class_admitted[c] ==
            class_completed[c] + class_shed[c] + class_update_requests[c],
        "class accounting broken (" << name << "): admitted="
            << class_admitted[c] << " != completed=" << class_completed[c]
            << " + shed=" << class_shed[c] << " + update_requests="
            << class_update_requests[c]);
    HARMONIA_CHECK_MSG(class_throttled[c] <= class_dropped[c],
                       "class accounting broken (" << name << "): throttled="
                           << class_throttled[c] << " > dropped="
                           << class_dropped[c]);
    HARMONIA_CHECK_MSG(class_latency[c].count() == class_completed[c],
                       "class accounting broken (" << name << "): "
                           << class_latency[c].count()
                           << " latency samples for " << class_completed[c]
                           << " completions");
  }

  // Patch/compaction split: every epoch books into exactly one side, and
  // the per-side build/upload sums reassemble the totals (a relative
  // epsilon absorbs the different fp accumulation order).
  HARMONIA_CHECK_MSG(patch_epochs + compaction_epochs == epochs,
                     "epoch accounting broken: patch_epochs=" << patch_epochs
                         << " + compaction_epochs=" << compaction_epochs
                         << " != epochs=" << epochs);
  const auto close = [](double split, double total) {
    const double scale = std::max({std::abs(split), std::abs(total), 1.0});
    return std::abs(split - total) <= 1e-9 * scale;
  };
  HARMONIA_CHECK_MSG(
      close(epoch_patch_build_seconds + epoch_compaction_build_seconds,
            epoch_build_seconds),
      "epoch accounting broken: patch+compaction build seconds "
          << epoch_patch_build_seconds + epoch_compaction_build_seconds
          << " != epoch_build_seconds=" << epoch_build_seconds);
  HARMONIA_CHECK_MSG(
      close(epoch_patch_upload_seconds + epoch_compaction_upload_seconds,
            epoch_upload_seconds),
      "epoch accounting broken: patch+compaction upload seconds "
          << epoch_patch_upload_seconds + epoch_compaction_upload_seconds
          << " != epoch_upload_seconds=" << epoch_upload_seconds);

  if (shard_batches.empty()) return;
  HARMONIA_CHECK_MSG(
      sum(shard_admitted) + update_requests == admitted,
      "sharded accounting broken: per-shard admissions sum to "
          << sum(shard_admitted) << " + update_requests=" << update_requests
          << " but admitted=" << admitted);
  HARMONIA_CHECK_MSG(sum(shard_dropped) == dropped,
                     "sharded accounting broken: per-shard drops sum to "
                         << sum(shard_dropped) << " but dropped=" << dropped);
  HARMONIA_CHECK_MSG(sum(shard_batches) == batches,
                     "sharded accounting broken: per-shard batches sum to "
                         << sum(shard_batches) << " but batches=" << batches);
  if (!replica_batches.empty()) {
    HARMONIA_CHECK_MSG(
        sum(replica_batches) == batches,
        "replica accounting broken: per-replica batches sum to "
            << sum(replica_batches) << " but batches=" << batches);
    HARMONIA_CHECK_MSG(replica_batches.size() % shard_batches.size() == 0,
                       "replica accounting broken: " << replica_batches.size()
                           << " replica slots over " << shard_batches.size()
                           << " shards is not a whole group size");
    const std::size_t k = replica_batches.size() / shard_batches.size();
    for (std::size_t s = 0; s < shard_batches.size(); ++s) {
      std::uint64_t group = 0;
      for (std::size_t r = 0; r < k; ++r) group += replica_batches[s * k + r];
      HARMONIA_CHECK_MSG(group == shard_batches[s],
                         "replica accounting broken: shard " << s
                             << "'s group serves " << group
                             << " batches but shard_batches=" << shard_batches[s]);
    }
  }
  HARMONIA_CHECK_MSG(plan_version == 1 + migrations,
                     "reshard accounting broken: plan_version=" << plan_version
                         << " != 1 + migrations=" << migrations);
}

void Backend::init_tuning(const ServeOptions& config) {
  tuner_ = config.tuner;
  tunables_ = Tunables::from(config);
  tune_obs_ = config.obs;
  if (tune_obs_.metrics != nullptr) {
    obs::MetricsRegistry& m = *tune_obs_.metrics;
    tune_applied_ = &m.counter("serve_tune_applied_total");
    tune_vetoed_ = &m.counter("serve_tune_vetoed_total");
    tune_rolled_back_ = &m.counter("serve_tune_rolled_back_total");
  }
}

void Backend::note_tune(TuneAction action, const std::string& note, double now) {
  if (action == TuneAction::kNone) return;
  obs::Counter* c = action == TuneAction::kApply    ? tune_applied_
                    : action == TuneAction::kVeto ? tune_vetoed_
                                                  : tune_rolled_back_;
  if (c != nullptr) c->inc();
  if (tune_obs_.trace != nullptr) {
    tune_obs_.trace->annotate(now, obs::TraceRecorder::kNoShard,
                              std::string{"tune "} + to_string(action) +
                                  (note.empty() ? "" : " ") + note);
  }
}

void Backend::apply_tunables(const Tunables& t, double now) {
  // The subclass hook validates against its construction-time config and
  // throws before mutating anything; adoption happens only on success.
  install_tunables(t, now);
  tunables_ = t;
}

void Backend::run_tune_tick(double now) {
  TuneDecision d = tuner_->tick(now, tunables_);
  switch (d.action) {
    case TuneAction::kNone:
      return;
    case TuneAction::kVeto:
      note_tune(TuneAction::kVeto, d.note, now);
      return;
    case TuneAction::kApply:
    case TuneAction::kRollback:
      try {
        apply_tunables(d.target, now);
      } catch (const ContractViolation&) {
        // Guard rail: a proposal the runtime can't honor (e.g. a batch
        // size above the construction-time queue capacity) must not take
        // the server down — it becomes a veto the controller observes as
        // a move with no effect.
        note_tune(TuneAction::kVeto, d.note + " (rejected)", now);
        return;
      }
      note_tune(d.action, d.note, now);
      return;
  }
}

ServerReport Backend::run(RequestSource& source) {
  ServerReport report;
  begin_run(report);
  double now = 0.0;

  while (true) {
    const Request* next = source.peek();
    const double t_arrival = next ? next->arrival : kInf;

    // A batch dispatches when BOTH its trigger (size reached, or oldest
    // member hit the deadline) has fired AND its device is free. Until
    // then its members stay in the bounded queue — that is what turns
    // device saturation into backpressure at admission instead of an
    // unbounded in-flight backlog.
    const double t_batch = next_batch_time(now);
    const double t_epoch = next_epoch_time(now);
    const double t_swap = next_swap_time();

    if (t_arrival == kInf && t_batch == kInf && t_epoch == kInf &&
        t_swap == kInf) {
      // Stream exhausted and no armed trigger (possible only with
      // infinite deadlines): final drain — queries first, then any staged
      // epoch, then leftovers of the update buffer as a last epoch.
      final_drain(now, source, report);
      if (!source.peek()) break;  // on_complete may have injected arrivals
      continue;
    }

    // Fault events cut ahead of same-instant work: a shard lost at t is
    // fenced before anything else dispatches at t, and a due restore
    // rejoins its shard before new work routes around it.
    const double t_work = std::min(std::min(t_arrival, t_batch),
                                   std::min(t_epoch, t_swap));
    const double t_fault = next_fault_time();
    const double t_restore = next_restore_time();
    if (t_fault <= t_work && t_fault <= t_restore) {
      now = std::max(now, t_fault);
      handle_fault(now, source, report);
      continue;
    }
    if (t_restore <= t_work) {
      now = std::max(now, t_restore);
      handle_restore(now, report);
      continue;
    }

    // Controller ticks run strictly between work events (same-instant
    // work wins, so a decision lands at a batch-formation boundary) and
    // never once the stream has drained — an idle backend has nothing to
    // tune, and the loop above must reach final_drain.
    if (tuner_ != nullptr && tuner_->next_tick() < t_work) {
      now = std::max(now, tuner_->next_tick());
      run_tune_tick(now);
      continue;
    }

    // A due swap outranks same-instant work: the swap IS the batch
    // boundary, so a batch triggering at the same instant dispatches
    // against the fresh image.
    if (t_swap <= t_arrival && t_swap <= t_batch && t_swap <= t_epoch) {
      now = std::max(now, t_swap);
      epoch_commit(now, source, report);
    } else if (t_arrival <= t_batch && t_arrival <= t_epoch) {
      now = t_arrival;
      const Request r = source.pop();
      ++report.arrivals;
      ++report.class_arrivals[qos::index(r.klass)];
      if (r.kind == RequestKind::kUpdate) {
        ++report.admitted;
        ++report.update_requests;
        ++report.class_admitted[qos::index(r.klass)];
        ++report.class_update_requests[qos::index(r.klass)];
        buffer_update(r);  // size trigger fires via t_epoch next round
      } else {
        submit(r, source, report);
      }
    } else if (t_batch <= t_epoch) {
      now = t_batch;
      dispatch_ready_batch(now, source, report);
    } else {
      now = t_epoch;
      epoch_begin(now, source, report);
    }
  }

  finish_run(report);
  report.check_invariants();
  return report;
}

ServerReport Backend::run(std::span<const Request> requests) {
  VectorSource source(std::vector<Request>(requests.begin(), requests.end()));
  return run(source);
}

}  // namespace harmonia::serve
