// serve::Backend — the one serving interface over any topology.
//
// `Server` (one device) and `ShardedServer` (range-sharded devices) had
// drifted into parallel, incompatible surfaces that every tool and bench
// special-cased. Backend unifies them as a template method: the base
// class owns the deterministic virtual-clock event loop — next event is
// the earliest of (arrival, batch trigger, epoch trigger, staged image
// swap), with fault/restore events cutting ahead of same-instant work —
// and the subclasses supply the topology-specific hooks (submit a query,
// dispatch the most urgent batch, begin/commit an epoch, drain).
//
// Callers hold a Backend&, run a stream, and read one ServerReport; the
// per-shard vectors are simply empty on a single-device topology. See
// the migration note in docs/serving.md.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include <array>

#include "common/stats.hpp"
#include "fault/injector.hpp"
#include "obs/observer.hpp"
#include "qos/priority.hpp"
#include "serve/request.hpp"
#include "serve/tunables.hpp"
#include "serve/workload.hpp"

namespace harmonia::serve {

struct ServerReport {
  /// Every request's outcome (including drops), in service order.
  std::vector<Response> responses;

  /// Seconds, over completed (non-dropped) queries.
  Summary latency;
  Summary queue_delay;
  /// Requests per dispatched query batch.
  Summary batch_size;
  /// Scheduler depth sampled at each query admission attempt.
  Summary queue_depth;

  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t completed = 0;  // non-dropped queries served
  /// Admitted queries later answered `dropped` by a fault mitigation
  /// (retry budget exhausted / degraded-mode backlog). Kept apart from
  /// `dropped` so admitted + dropped == arrivals holds under faults.
  std::uint64_t shed = 0;
  /// Update *requests* admitted into the epoch buffer (each produces one
  /// update response; distinct from updates_applied, which counts ops and
  /// excludes failed ones). Closes the admission identity below.
  std::uint64_t update_requests = 0;
  /// Admission rejects due to per-tenant token-bucket throttling (a
  /// subset of `dropped`: a throttled request is answered dropped, it is
  /// just dropped *before* the queue rather than by backpressure).
  std::uint64_t throttled = 0;
  std::uint64_t batches = 0;
  std::uint64_t epochs = 0;
  std::uint64_t updates_applied = 0;
  std::uint64_t updates_failed = 0;

  /// Per-priority-class splits of the stream-level counters above
  /// (indexed by qos::index). Each array sums to its scalar counterpart;
  /// single-class streams put everything in gold. class_shed includes
  /// both fault shedding and QoS overload eviction.
  std::array<std::uint64_t, qos::kNumClasses> class_arrivals{};
  std::array<std::uint64_t, qos::kNumClasses> class_admitted{};
  std::array<std::uint64_t, qos::kNumClasses> class_dropped{};
  std::array<std::uint64_t, qos::kNumClasses> class_throttled{};
  std::array<std::uint64_t, qos::kNumClasses> class_completed{};
  std::array<std::uint64_t, qos::kNumClasses> class_shed{};
  std::array<std::uint64_t, qos::kNumClasses> class_update_requests{};
  /// Seconds over completed queries, split by class (class_latency[c]
  /// has exactly class_completed[c] samples).
  std::array<Summary, qos::kNumClasses> class_latency{};

  /// Virtual time of the last completion.
  double makespan = 0.0;
  /// Device-occupied time (batch service + epoch stalls).
  double busy_seconds = 0.0;

  /// Epoch-pipeline attribution (docs/serving.md#epoch-pipeline), summed
  /// over epochs: modeled CPU build (Algorithm-1 apply), PCIe image
  /// upload, staged-image wait for its swap boundary, and device serving
  /// time lost to epochs. Quiesce mode stalls every device for
  /// build+upload (stall > 0, swap wait 0); the double-buffered overlap
  /// mode pays only the swap (stall 0) — the E13 sweep plots the delta.
  double epoch_build_seconds = 0.0;
  double epoch_upload_seconds = 0.0;
  double epoch_swap_wait_seconds = 0.0;
  double epoch_stall_seconds = 0.0;

  /// Incremental-mode split of the epoch totals above: an epoch books as
  /// "patch" when it edited the committed image in place (every staged
  /// shard patched), as "compaction" when any shard rebuilt a full image
  /// — which includes all quiesce and overlap epochs. The pairs sum to
  /// epochs / epoch_build_seconds / epoch_upload_seconds exactly.
  std::uint64_t patch_epochs = 0;
  std::uint64_t compaction_epochs = 0;
  double epoch_patch_build_seconds = 0.0;
  double epoch_patch_upload_seconds = 0.0;
  double epoch_compaction_build_seconds = 0.0;
  double epoch_compaction_upload_seconds = 0.0;

  /// Durability tallies (zero when no durability domain is wired):
  /// write-ahead log appends and snapshot images written, summed over
  /// shards. Purely additive — no serving identity involves them.
  std::uint64_t log_batches = 0;
  std::uint64_t snapshots_written = 0;

  /// Injection/detection/mitigation tallies (all zero on fault-free runs).
  fault::FaultReport faults;

  // Sharded-topology extras; all empty/zero on a single-device backend.

  /// Query batches dispatched / queries served per shard.
  std::vector<std::uint64_t> shard_batches;
  std::vector<std::uint64_t> shard_queries;
  /// Per-shard admissions and drops, tallied exactly once at the routing
  /// point: a query counts toward the shard its routing starts at
  /// (points: the owner shard; ranges: the first shard of the span), so
  /// each vector sums to its stream-level counter. The schedulers' own
  /// admitted()/rejected() tallies cannot be aggregated here — they
  /// count every fan-out sub-request (double-counting straddling
  /// ranges) and never see all-or-nothing probe drops (omitting them).
  std::vector<std::uint64_t> shard_admitted;
  std::vector<std::uint64_t> shard_dropped;
  /// Range requests that fanned out across >1 shard.
  std::uint64_t split_ranges = 0;
  /// Scan requests whose [lo, n) coverage straddled >1 shard.
  std::uint64_t split_scans = 0;
  /// Device idle time summed over shards while quiesce epoch barriers
  /// gathered the slowest shard (0 in overlap mode — no barrier).
  double barrier_wait_seconds = 0.0;

  /// Replica-group extras (docs/sharding.md#replica-groups): batches per
  /// replica slot, flattened shard-major ([shard * K + replica]). Empty
  /// on a single-device backend; sums to `batches` when populated, and
  /// each shard's K slots sum to its shard_batches entry.
  std::vector<std::uint64_t> replica_batches;

  /// Live-resharding extras (docs/sharding.md#live-resharding). The plan
  /// version starts at 1 on a sharded backend (0 = unsharded) and bumps
  /// once per committed migration, so plan_version == 1 + migrations.
  unsigned plan_version = 1;
  std::uint64_t migrations = 0;
  /// Keys moved across the split boundary, summed over migrations.
  std::uint64_t migrated_keys = 0;
  /// Modeled host CPU building the two post-split images / concurrent
  /// PCIe upload of the staged pair (slowest side per migration).
  double migration_build_seconds = 0.0;
  double migration_upload_seconds = 0.0;

  /// Completed queries per virtual second, end to end.
  double query_throughput() const {
    return makespan > 0.0 ? static_cast<double>(completed) / makespan : 0.0;
  }
  /// Completed queries per device-busy second: the capacity the batching
  /// achieved, independent of how hard the workload pushed.
  double service_rate() const {
    return busy_seconds > 0.0 ? static_cast<double>(completed) / busy_seconds : 0.0;
  }

  /// Accounting identities every fully-drained run must satisfy; run()
  /// asserts them before returning (two prior serving PRs each shipped a
  /// silent tally bug such an invariant would have tripped). At close
  /// nothing is in flight, so:
  ///   arrivals == admitted + dropped
  ///   admitted == completed + shed + update_requests
  ///   responses.size() == arrivals  (every request answered exactly once)
  /// per priority class (for each counter with a class_* split):
  ///   class_x[c] sums to x;  class_arrivals[c] == class_admitted[c] +
  ///   class_dropped[c];  class_admitted[c] == class_completed[c] +
  ///   class_shed[c] + class_update_requests[c];
  ///   class_latency[c].count() == class_completed[c];
  ///   class_throttled[c] <= class_dropped[c]
  /// and, when the backend is sharded (shard vectors non-empty):
  ///   sum(shard_admitted) + update_requests == admitted
  ///   sum(shard_dropped) == dropped
  ///   sum(shard_batches) == batches
  ///   sum(replica_batches) == batches, with each shard's K slots
  ///   summing to its shard_batches entry (when replica_batches is
  ///   populated);  plan_version == 1 + migrations
  /// Throws ContractViolation on violation.
  void check_invariants() const;
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// Runs the stream to completion (drains all lanes, commits any staged
  /// epoch, applies leftover updates) and returns the aggregate report
  /// with its invariants checked.
  ServerReport run(RequestSource& source);
  /// Open-loop convenience: serve a pre-built, arrival-sorted stream.
  ServerReport run(std::span<const Request> requests);

  virtual unsigned num_shards() const = 0;

  /// The currently adopted runtime snapshot (docs/serving.md#autotuner).
  /// Inside a staged-epoch window this is the *target*: the image/PSA
  /// knobs may still be latched — effective_query_knobs() reports what
  /// the dispatch path is actually using.
  const Tunables& tunables() const { return tunables_; }

  /// Validates `t` against the construction-time options and adopts it.
  /// Scheduler knobs (max_batch/max_wait) take effect at the next batch
  /// formation, apply_threads at the next epoch trigger; the image/PSA
  /// knobs (group_size/sort_bits) install immediately when every shard
  /// serves one committed image, otherwise they latch and land at the
  /// epoch-swap boundary (the last shard's swap). Throws
  /// ContractViolation (nothing adopted) on an invalid snapshot.
  void apply_tunables(const Tunables& t, double now);

  /// The (group_size, sort_bits) pair dispatches are using right now —
  /// equals tunables()'s pair except while a snapshot is latched for a
  /// swap boundary. The swap stress tests pin that window.
  virtual std::pair<unsigned, unsigned> effective_query_knobs() const {
    return {tunables_.group_size, tunables_.sort_bits};
  }

 protected:
  static constexpr double kNever = std::numeric_limits<double>::infinity();

  /// Called once before the loop (size per-shard report vectors, ...).
  virtual void begin_run(ServerReport& /*report*/) {}

  /// Earliest instant a closed batch can start on a free device; kNever
  /// when every scheduler is idle.
  virtual double next_batch_time(double now) const = 0;
  /// Dispatches the most urgent ready batch at `now` (the instant
  /// next_batch_time returned).
  virtual void dispatch_ready_batch(double now, RequestSource& source,
                                    ServerReport& report) = 0;

  /// Routes one query arrival (updates never reach this hook — the loop
  /// buffers them via buffer_update). Accounts admitted/dropped itself.
  virtual void submit(const Request& r, RequestSource& source,
                      ServerReport& report) = 0;
  /// Buffers one update request toward the next epoch.
  virtual void buffer_update(const Request& r) = 0;

  /// Next epoch trigger; kNever when nothing is buffered (or, in overlap
  /// mode, while a staged epoch is still in flight).
  virtual double next_epoch_time(double now) const = 0;
  /// Quiesce+apply (kQuiesce) or start the staged build (kOverlap).
  virtual void epoch_begin(double now, RequestSource& source,
                           ServerReport& report) = 0;
  /// Next atomic image swap; kNever when no staged epoch is swap-ready.
  virtual double next_swap_time() const { return kNever; }
  /// Commits (part of) a staged epoch at `now`, a batch boundary.
  virtual void epoch_commit(double /*now*/, RequestSource& /*source*/,
                            ServerReport& /*report*/) {}

  /// Fault hooks: arm times of the next injected fault / due restore.
  /// They cut ahead of same-instant work. Inert by default.
  virtual double next_fault_time() const { return kNever; }
  virtual void handle_fault(double /*now*/, RequestSource& /*source*/,
                            ServerReport& /*report*/) {}
  virtual double next_restore_time() const { return kNever; }
  virtual void handle_restore(double /*now*/, ServerReport& /*report*/) {}

  /// Stream exhausted with no armed trigger: flush remaining batches,
  /// commit any staged epoch, apply leftover updates as a last epoch.
  virtual void final_drain(double now, RequestSource& source,
                           ServerReport& report) = 0;
  /// After the loop: attach the fault report, export end-of-run gauges,
  /// assert internal state fully drained.
  virtual void finish_run(ServerReport& report) = 0;

  /// Wires the runtime-tunables surface from the (already validated)
  /// options: the initial snapshot, the optional controller, and the
  /// serve_tune_*_total counters. Subclass ctors call this once.
  void init_tuning(const ServeOptions& config);

  /// Subclass hook behind apply_tunables: validate `t` against the
  /// construction-time config (throw before touching anything), then
  /// install each knob at its safe point — scheduler knobs now,
  /// image/PSA knobs now or latched until the next swap boundary.
  virtual void install_tunables(const Tunables& /*t*/, double /*now*/) {}

  /// Books one controller decision: bumps the matching counter and
  /// annotates the trace ("tune <action> <note>"). kNone is silent.
  void note_tune(TuneAction action, const std::string& note, double now);

  /// The wired controller (null without one) — subclasses feed it
  /// re-profile observations at swap boundaries.
  TuneController* tuner() const { return tuner_; }

 private:
  void run_tune_tick(double now);

  TuneController* tuner_ = nullptr;
  Tunables tunables_;
  obs::Observer tune_obs_;
  obs::Counter* tune_applied_ = nullptr;
  obs::Counter* tune_vetoed_ = nullptr;
  obs::Counter* tune_rolled_back_ = nullptr;
};

}  // namespace harmonia::serve
