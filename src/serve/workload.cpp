#include "serve/workload.hpp"

#include <cmath>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "queries/batch.hpp"

namespace harmonia::serve {

VectorSource::VectorSource(std::vector<Request> requests)
    : requests_(std::move(requests)) {
  for (std::size_t i = 1; i < requests_.size(); ++i) {
    HARMONIA_CHECK(requests_[i - 1].arrival <= requests_[i].arrival);
  }
}

std::vector<Request> make_open_loop(const std::vector<Key>& tree_keys,
                                    const OpenLoopSpec& spec) {
  HARMONIA_CHECK(!tree_keys.empty());
  HARMONIA_CHECK(spec.arrivals_per_second > 0.0);
  HARMONIA_CHECK(spec.update_fraction + spec.range_fraction +
                     spec.scan_fraction <=
                 1.0);

  Xoshiro256 rng(spec.seed);

  // Draw the kind sequence first so each kind's target pool can be built
  // at exactly the needed size.
  std::vector<RequestKind> kinds;
  kinds.reserve(spec.count);
  std::uint64_t updates = 0, ranges = 0, points = 0;
  for (std::uint64_t i = 0; i < spec.count; ++i) {
    const double u = rng.next_double();
    if (u < spec.update_fraction) {
      kinds.push_back(RequestKind::kUpdate);
      ++updates;
    } else if (u < spec.update_fraction + spec.range_fraction) {
      kinds.push_back(RequestKind::kRange);
      ++ranges;
    } else if (u < spec.update_fraction + spec.range_fraction +
                       spec.scan_fraction) {
      kinds.push_back(RequestKind::kScan);
    } else {
      kinds.push_back(RequestKind::kPoint);
      ++points;
    }
  }

  const auto point_targets =
      points > 0 ? queries::make_queries(tree_keys, points, spec.dist, spec.seed + 1)
                 : std::vector<Key>{};
  std::vector<queries::UpdateOp> ops;
  if (updates > 0) {
    queries::BatchSpec bs;
    bs.size = updates;
    bs.insert_fraction = spec.insert_fraction;
    bs.delete_fraction = spec.delete_fraction;
    bs.seed = spec.seed + 2;
    ops = queries::make_update_batch(tree_keys, bs);
  }

  const std::uint64_t span = std::max<std::uint64_t>(1, spec.range_span);
  const std::uint64_t max_start =
      tree_keys.size() > span ? tree_keys.size() - span : 1;

  std::vector<Request> out;
  out.reserve(spec.count);
  double now = 0.0;
  std::uint64_t next_point = 0, next_op = 0;
  for (std::uint64_t i = 0; i < spec.count; ++i) {
    // Exponential interarrival -> Poisson process.
    now += -std::log1p(-rng.next_double()) / spec.arrivals_per_second;
    Request r;
    r.id = i;
    r.kind = kinds[i];
    r.arrival = now;
    switch (kinds[i]) {
      case RequestKind::kPoint:
        r.key = point_targets[next_point++];
        break;
      case RequestKind::kRange: {
        const std::uint64_t start = rng.next_below(max_start);
        r.key = tree_keys[start];
        r.hi = tree_keys[std::min<std::uint64_t>(start + span - 1,
                                                 tree_keys.size() - 1)];
        break;
      }
      case RequestKind::kScan: {
        const std::uint64_t start = rng.next_below(tree_keys.size());
        r.key = tree_keys[start];
        r.scan_n = std::max<std::uint32_t>(1, spec.scan_n);
        break;
      }
      case RequestKind::kUpdate: {
        const auto& op = ops[next_op++];
        r.op = op.kind;
        r.key = op.key;
        r.value = op.value;
        break;
      }
    }
    // Tenant identity last, and only in multi-tenant specs: single-tenant
    // streams draw nothing extra and stay bit-identical to pre-QoS ones.
    if (spec.tenants > 1) {
      r.tenant = static_cast<std::uint32_t>(rng.next_below(spec.tenants));
      r.klass = qos::class_of_tenant(r.tenant);
    }
    out.push_back(r);
  }
  return out;
}

ClosedLoopSource::ClosedLoopSource(const std::vector<Key>& tree_keys,
                                   const ClosedLoopSpec& spec)
    : spec_(spec) {
  HARMONIA_CHECK(!tree_keys.empty());
  HARMONIA_CHECK(spec_.clients > 0);
  targets_ = queries::make_queries(tree_keys, std::max<std::uint64_t>(1, spec_.total_requests),
                                   spec_.dist, spec_.seed + 1);
  // Stagger the first wave so the initial burst is not one giant batch.
  const double stagger = spec_.think_seconds / spec_.clients;
  for (unsigned c = 0; c < spec_.clients && issued_ < spec_.total_requests; ++c) {
    const Request r = make_request(c, c * stagger);
    scheduled_.emplace(r.arrival, r);
  }
}

Request ClosedLoopSource::make_request(unsigned client, double arrival) {
  Request r;
  r.id = issued_;
  r.kind = RequestKind::kPoint;
  r.arrival = arrival;
  r.key = targets_[issued_];
  client_of_[r.id] = client;
  ++issued_;
  return r;
}

const Request* ClosedLoopSource::peek() const {
  return scheduled_.empty() ? nullptr : &scheduled_.begin()->second;
}

Request ClosedLoopSource::pop() {
  HARMONIA_CHECK(!scheduled_.empty());
  Request r = scheduled_.begin()->second;
  scheduled_.erase(scheduled_.begin());
  return r;
}

void ClosedLoopSource::on_complete(const Response& response) {
  const auto it = client_of_.find(response.id);
  if (it == client_of_.end()) return;  // not one of ours
  const unsigned client = it->second;
  client_of_.erase(it);
  if (issued_ >= spec_.total_requests) return;
  // The client thinks, then issues its next request (even after a drop —
  // a real client retries later).
  const Request r = make_request(client, response.completion + spec_.think_seconds);
  scheduled_.emplace(r.arrival, r);
}

}  // namespace harmonia::serve
