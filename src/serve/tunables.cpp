#include "serve/tunables.hpp"

#include <sstream>

#include "common/expect.hpp"
#include "serve/options.hpp"

namespace harmonia::serve {

namespace {
/// Widest thread group a warp can hold. The simulated devices all run
/// 32-lane warps (gpusim::DeviceSpec); resolve_group_size re-checks
/// against the actual spec at dispatch.
constexpr unsigned kWarpWidth = 32;
}  // namespace

Tunables Tunables::from(const ServeOptions& opts) {
  Tunables t;
  t.max_batch = opts.batch.max_batch;
  t.max_wait = opts.batch.max_wait;
  t.apply_threads = opts.epoch.apply_threads;
  t.group_size = opts.batch.pipeline.query_options.group_size;
  t.sort_bits = opts.batch.pipeline.query_options.psa_override_bits;
  return t;
}

void Tunables::validate(const ServeOptions& opts) const {
  HARMONIA_CHECK_MSG(max_batch > 0, "tunables.max_batch must be positive");
  HARMONIA_CHECK_MSG(
      max_batch <= opts.batch.queue_capacity,
      "tunables.max_batch (" << max_batch << ") exceeds the construction-time "
          << "queue capacity (" << opts.batch.queue_capacity
          << ") — the admission queues are not resizable online");
  HARMONIA_CHECK_MSG(max_wait > 0.0, "tunables.max_wait must be positive");
  HARMONIA_CHECK_MSG(apply_threads > 0, "tunables.apply_threads must be positive");
  HARMONIA_CHECK_MSG(
      group_size == 0 ||
          (group_size <= kWarpWidth && (group_size & (group_size - 1)) == 0),
      "tunables.group_size (" << group_size << ") must be 0 (fanout default) "
          << "or a power of two <= the warp width " << kWarpWidth);
  HARMONIA_CHECK_MSG(sort_bits <= 64,
                     "tunables.sort_bits (" << sort_bits
                         << ") exceeds the 64-bit key width");
}

std::string to_string(const Tunables& t) {
  std::ostringstream os;
  os << "max_batch=" << t.max_batch << " max_wait_us=" << t.max_wait * 1e6
     << " apply_threads=" << t.apply_threads << " group_size=" << t.group_size
     << " sort_bits=" << t.sort_bits;
  return os.str();
}

const char* to_string(TuneAction action) {
  switch (action) {
    case TuneAction::kNone: return "none";
    case TuneAction::kApply: return "applied";
    case TuneAction::kVeto: return "vetoed";
    case TuneAction::kRollback: return "rolled-back";
  }
  return "?";
}

}  // namespace harmonia::serve
