// End-to-end observability: the tracing half (see obs/metrics.hpp for
// metrics).
//
// Each admitted request carries a trace context: the serving layers stamp
// it at queue-enter (admission), batch-form (lane close), dispatch
// (device start), shard-scatter (fan-out split), gather-merge (fan-out
// reassembly), and reply (completion). Stamps are on the *virtual clock*,
// so a trace replays bit-identically for a fixed (stream, config, fault
// plan) triple — two same-seed runs dump byte-identical CSV/JSON, which
// the CI determinism gate diffs.
//
// Fault events are annotations on the same timeline (stage=annotation,
// no request id): an injected slowdown, a consumed dispatch failure, a
// corruption, a shard loss/restore all interleave with the lifecycle
// stamps in event order.
//
// The recorder appends to a plain vector: the serving event loop is
// single-threaded on the virtual clock, so the hot path is a push_back,
// not a lock. (Metrics, which *are* read concurrently by TSan-covered
// report paths, are the atomic half.)
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace harmonia::obs {

enum class Stage : std::uint8_t {
  kQueueEnter,    // admitted into a scheduler lane / update buffer
  kBatchForm,     // the lane containing the request closed its batch
  kDispatch,      // the batch started on the device
  kShardScatter,  // a straddling range split one sub-request onto a shard
  kGatherMerge,   // the last fan-out piece arrived; response reassembled
  kReply,         // the response was delivered (completed, shed, or merged)
  kAnnotation,    // run-level event (fault injected, epoch barrier, ...)
};

const char* to_string(Stage stage);

struct TraceEvent {
  std::uint64_t request_id = 0;
  Stage stage = Stage::kAnnotation;
  /// Virtual seconds.
  double at = 0.0;
  /// Shard the event happened on; kNoShard for single-device/global.
  unsigned shard = 0;
  /// Free-form detail: "dropped", "degraded", "fault slowdown factor=6".
  std::string note;
};

class TraceRecorder {
 public:
  static constexpr std::uint64_t kNoRequest = ~std::uint64_t{0};
  static constexpr unsigned kNoShard = ~0u;

  void stamp(std::uint64_t request_id, Stage stage, double at,
             unsigned shard = kNoShard, std::string note = {}) {
    events_.push_back({request_id, stage, at, shard, std::move(note)});
  }
  /// Run-level event not tied to one request (fault injection, barrier).
  void annotate(double at, unsigned shard, std::string note) {
    events_.push_back({kNoRequest, Stage::kAnnotation, at, shard, std::move(note)});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  /// Events recorded for one request id, in record order.
  std::vector<TraceEvent> for_request(std::uint64_t request_id) const;

  /// CSV: header + one row per event, in record order (== virtual-clock
  /// order for stamps made as the simulation advances). Deterministic.
  void write_csv(std::ostream& os) const;
  /// JSON array of event objects, same order and determinism.
  void write_json(std::ostream& os) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace harmonia::obs
