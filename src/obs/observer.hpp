// The handle the serving layers carry: an Observer bundles an optional
// MetricsRegistry and an optional TraceRecorder. Both default to null —
// an inactive Observer costs one pointer test per instrumentation site,
// keeping unobserved runs bit-identical to pre-observability behaviour
// (the same discipline fault::FaultInjector uses for fault-free runs).
//
// Ownership stays with whoever built the registry/recorder (the tool or
// test); the serving stack only borrows them for the run.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace harmonia::obs {

struct Observer {
  MetricsRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;

  bool active() const { return metrics != nullptr || trace != nullptr; }
};

}  // namespace harmonia::obs
