#include "obs/trace.hpp"

#include <cstdio>

namespace harmonia::obs {

namespace {

/// Shortest round-trip-exact decimal (same discipline as the metrics
/// exporter): one formatting choice keeps dumps byte-deterministic.
std::string fmt(double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  for (int prec = 1; prec < 17; ++prec) {
    char probe[64];
    std::snprintf(probe, sizeof probe, "%.*g", prec, x);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == x) return probe;
  }
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kQueueEnter: return "queue_enter";
    case Stage::kBatchForm: return "batch_form";
    case Stage::kDispatch: return "dispatch";
    case Stage::kShardScatter: return "shard_scatter";
    case Stage::kGatherMerge: return "gather_merge";
    case Stage::kReply: return "reply";
    case Stage::kAnnotation: return "annotation";
  }
  return "?";
}

std::vector<TraceEvent> TraceRecorder::for_request(std::uint64_t request_id) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.request_id == request_id) out.push_back(e);
  }
  return out;
}

void TraceRecorder::write_csv(std::ostream& os) const {
  os << "request_id,stage,at_seconds,shard,note\n";
  for (const TraceEvent& e : events_) {
    if (e.request_id == kNoRequest) {
      os << "-";
    } else {
      os << e.request_id;
    }
    os << "," << to_string(e.stage) << "," << fmt(e.at) << ",";
    if (e.shard == kNoShard) {
      os << "-";
    } else {
      os << e.shard;
    }
    // Notes are controlled strings (no commas by construction), so no
    // quoting pass is needed; keep them verbatim.
    os << "," << e.note << "\n";
  }
}

void TraceRecorder::write_json(std::ostream& os) const {
  os << "[\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    os << "  {";
    if (e.request_id != kNoRequest) os << "\"request_id\": " << e.request_id << ", ";
    os << "\"stage\": \"" << to_string(e.stage) << "\", \"at\": " << fmt(e.at);
    if (e.shard != kNoShard) os << ", \"shard\": " << e.shard;
    if (!e.note.empty()) os << ", \"note\": \"" << json_escape(e.note) << "\"";
    os << "}" << (i + 1 < events_.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

}  // namespace harmonia::obs
