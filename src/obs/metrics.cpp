#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/expect.hpp"

namespace harmonia::obs {

namespace {

/// Shortest round-trip-exact decimal for a double. One formatting choice
/// everywhere keeps every exporter byte-deterministic.
std::string fmt(double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[64];
    std::snprintf(probe, sizeof probe, "%.*g", prec, x);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == x) return probe;
  }
  return buf;
}

std::string family_of(const std::string& name) {
  const auto brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// Splices a label into a possibly-labelled metric name:
///   f("x_seconds", "le=\"0.1\"") == "x_seconds{le=\"0.1\"}"
///   f("x{kind=\"a\"}", "le=\"0.1\"") == "x{kind=\"a\",le=\"0.1\"}"
std::string with_label(const std::string& name, const std::string& label) {
  const auto brace = name.find('{');
  if (brace == std::string::npos) return name + "{" + label + "}";
  std::string out = name;
  out.insert(out.size() - 1, "," + label);
  return out;
}

/// Appends a series suffix to the family part, keeping any label block last:
///   f("x_seconds", "_bucket") == "x_seconds_bucket"
///   f("x{kind=\"a\"}", "_sum") == "x_sum{kind=\"a\"}"
std::string suffixed(const std::string& name, const std::string& suffix) {
  const auto brace = name.find('{');
  if (brace == std::string::npos) return name + suffix;
  return name.substr(0, brace) + suffix + name.substr(brace);
}

}  // namespace

LatencyHistogram::LatencyHistogram(std::vector<double> edges)
    : edges_(std::move(edges)), counts_(edges_.empty() ? 0 : edges_.size() - 1) {
  HARMONIA_CHECK_MSG(edges_.size() >= 2, "a histogram needs at least one bucket");
  for (std::size_t i = 1; i < edges_.size(); ++i) {
    HARMONIA_CHECK_MSG(edges_[i - 1] < edges_[i],
                       "histogram edges must be strictly ascending");
  }
}

void LatencyHistogram::observe(double x) {
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
  if (x < edges_.front()) {
    underflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (x >= edges_.back()) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  const auto i = static_cast<std::size_t>(it - edges_.begin()) - 1;
  counts_[i].fetch_add(1, std::memory_order_relaxed);
}

std::vector<double> LatencyHistogram::exponential_edges(double lo, double hi,
                                                        std::size_t n) {
  HARMONIA_CHECK(lo > 0.0 && hi > lo && n >= 1);
  std::vector<double> edges(n + 1);
  const double step = std::log(hi / lo) / static_cast<double>(n);
  for (std::size_t i = 0; i <= n; ++i)
    edges[i] = lo * std::exp(step * static_cast<double>(i));
  edges.front() = lo;
  edges.back() = hi;
  return edges;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  Entry& e = entries_[name];
  HARMONIA_CHECK_MSG(!e.gauge && !e.histogram,
                     "metric '" << name << "' already registered with another kind");
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  Entry& e = entries_[name];
  HARMONIA_CHECK_MSG(!e.counter && !e.histogram,
                     "metric '" << name << "' already registered with another kind");
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name,
                                             std::vector<double> edges) {
  std::lock_guard lock(mu_);
  Entry& e = entries_[name];
  HARMONIA_CHECK_MSG(!e.counter && !e.gauge,
                     "metric '" << name << "' already registered with another kind");
  if (!e.histogram) e.histogram = std::make_unique<LatencyHistogram>(std::move(edges));
  return *e.histogram;
}

std::string MetricsRegistry::prometheus_text() const {
  std::lock_guard lock(mu_);
  std::string out;
  std::string last_family;
  // std::map iteration is name-sorted, so families are contiguous and the
  // whole dump is deterministic.
  for (const auto& [name, e] : entries_) {
    const std::string family = family_of(name);
    if (family != last_family) {
      out += "# TYPE " + family;
      out += e.counter ? " counter" : (e.gauge ? " gauge" : " histogram");
      out += "\n";
      last_family = family;
    }
    if (e.counter) {
      out += name + " " + std::to_string(e.counter->value()) + "\n";
    } else if (e.gauge) {
      out += name + " " + fmt(e.gauge->value()) + "\n";
    } else {
      const LatencyHistogram& h = *e.histogram;
      // Cumulative `le` buckets; the underflow bucket (samples below the
      // lowest edge) is part of every cumulative count, per Prometheus
      // semantics, but is *also* exported explicitly below so tail
      // corruption can never hide in an edge bucket.
      const std::string bucket = suffixed(name, "_bucket");
      std::uint64_t cum = h.underflow();
      for (std::size_t i = 0; i < h.bucket_count(); ++i) {
        cum += h.bucket(i);
        out += with_label(bucket, "le=\"" + fmt(h.edge(i + 1)) + "\"") + " " +
               std::to_string(cum) + "\n";
      }
      out += with_label(bucket, "le=\"+Inf\"") + " " +
             std::to_string(h.count()) + "\n";
      out += suffixed(name, "_underflow_total") + " " +
             std::to_string(h.underflow()) + "\n";
      out += suffixed(name, "_overflow_total") + " " +
             std::to_string(h.overflow()) + "\n";
      out += suffixed(name, "_sum") + " " + fmt(h.sum()) + "\n";
      out += suffixed(name, "_count") + " " + std::to_string(h.count()) + "\n";
    }
  }
  return out;
}

}  // namespace harmonia::obs
