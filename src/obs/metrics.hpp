// End-to-end observability: the metrics half (see obs/trace.hpp for the
// request-lifecycle tracing half).
//
// A MetricsRegistry holds named counters, gauges, and fixed-bucket
// latency histograms. Registration (name -> instrument) takes a mutex —
// that is the cold path, done once when a serving layer attaches an
// Observer. Every instrument handed out has a stable address, so the hot
// path (a batch dispatch, a per-request completion) is a relaxed atomic
// add on a cached pointer: no lock, no lookup, no allocation.
//
// Names follow the Prometheus convention, including inline labels:
//   serve_batches_total{kind="point"}
// The registry treats the whole string as the key; the text exporter
// groups families (the part before '{') for # TYPE lines and emits
// metrics sorted by name, so a dump is byte-deterministic for a given
// set of counter values — which is what the CI metrics-determinism gate
// diffs.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace harmonia::obs {

/// Monotone event count. Relaxed increments: per-instrument totals are
/// exact, cross-instrument ordering is not promised (nor needed).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written (or accumulated) double, e.g. queue depth or summed
/// barrier-wait seconds.
class Gauge {
 public:
  void set(double x) { v_.store(x, std::memory_order_relaxed); }
  void add(double dx) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + dx, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket latency histogram with *explicit* under/overflow buckets:
/// a sample below edges.front() or at/above edges.back() is counted apart
/// from the edge buckets instead of silently clamped into them (the
/// corruption the old common/stats Histogram suffered from — tail
/// readings must never absorb out-of-range samples invisibly).
///
/// Bucket i spans [edge(i), edge(i+1)); observe() is lock-free (one
/// relaxed atomic add picked by binary search over the fixed edges).
class LatencyHistogram {
 public:
  /// `edges` are the bucket boundaries, strictly ascending, size >= 2
  /// (defining size-1 buckets).
  explicit LatencyHistogram(std::vector<double> edges);

  void observe(double x);

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  double edge(std::size_t i) const { return edges_[i]; }
  std::uint64_t underflow() const { return underflow_.load(std::memory_order_relaxed); }
  std::uint64_t overflow() const { return overflow_.load(std::memory_order_relaxed); }
  /// All samples observed, in-range or not.
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Exponentially spaced edges from lo to hi (inclusive), n buckets —
  /// the natural grid for latencies spanning decades.
  static std::vector<double> exponential_edges(double lo, double hi, std::size_t n);

 private:
  std::vector<double> edges_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> underflow_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class MetricsRegistry {
 public:
  /// Registration: returns the instrument registered under `name`,
  /// creating it on first use. The reference stays valid for the
  /// registry's lifetime — cache it and increment lock-free.
  /// A name must keep one instrument kind for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// On first registration the histogram is created with `edges`;
  /// later calls return the existing instrument (edges ignored).
  LatencyHistogram& histogram(const std::string& name, std::vector<double> edges);

  /// Prometheus text exposition: families sorted by name, one # TYPE line
  /// per family, histogram buckets as cumulative `le` series plus
  /// explicit `<name>_underflow_total` / `<name>_overflow_total`.
  /// Byte-deterministic in the registry contents.
  std::string prometheus_text() const;

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace harmonia::obs
