// Per-warp memory coalescing: groups the active lanes' byte ranges into
// the minimal set of cache-line transactions, exactly as the hardware
// memory controller does for a warp-wide load (CUDA programming guide,
// "coalesced access": addresses falling in one line are served by a
// single transaction).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/lane_mask.hpp"

namespace harmonia::gpusim {

/// Computes the distinct line addresses (addr / line_bytes) touched by the
/// active lanes. Each lane reads `bytes_per_lane` starting at addrs[lane];
/// an access straddling a line boundary contributes both lines.
/// The result is sorted and deduplicated; its size is the transaction count.
std::vector<std::uint64_t> coalesce(std::span<const std::uint64_t> addrs, LaneMask active,
                                    unsigned bytes_per_lane, unsigned line_bytes);

}  // namespace harmonia::gpusim
