// Kernel execution counters and the cycle/throughput model.
//
// These counters are the simulator's equivalent of the nvprof metrics the
// paper reports in Figure 12: global memory transactions, memory
// divergence, and warp coherence.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/device_spec.hpp"

namespace harmonia::gpusim {

struct KernelMetrics {
  std::uint64_t warps = 0;

  // SIMT step accounting (per-warp instruction issues).
  std::uint64_t steps = 0;
  /// Steps whose active mask covered the whole warp.
  std::uint64_t coherent_steps = 0;

  // Warp-wide load accounting.
  std::uint64_t loads = 0;
  /// Loads that needed more than one line transaction (memory divergence).
  std::uint64_t divergent_loads = 0;
  /// All line transactions issued, regardless of the serving level.
  std::uint64_t transactions = 0;
  /// Transactions that missed every cache and went to DRAM. Together with
  /// l2_hits these are the "global memory transactions" nvprof counts
  /// (gld_transactions reaching the L2/DRAM path).
  std::uint64_t dram_transactions = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t readonly_hits = 0;
  std::uint64_t const_hits = 0;

  // Cycle accumulation, per SM (index = sm id).
  std::vector<std::uint64_t> sm_compute_cycles;
  std::vector<std::uint64_t> sm_mem_cycles;
  std::vector<std::uint64_t> sm_resident_warps;

  // ---- Derived metrics ----

  /// Fraction of issue steps executed with a full warp (Fig. 12 metric;
  /// higher is better — "anti-correlated with warp divergence").
  double warp_coherence() const;

  /// Fraction of warp loads that split into multiple transactions.
  double memory_divergence() const;

  /// Transactions that reached the L2/DRAM interface (i.e. missed the
  /// per-SM caches): the analogue of nvprof global memory transactions.
  std::uint64_t global_transactions() const { return l2_hits + dram_transactions; }

  double avg_transactions_per_warp() const;

  /// Total kernel time under the roofline model of DESIGN.md §5.
  double elapsed_cycles(const DeviceSpec& spec) const;
  double elapsed_seconds(const DeviceSpec& spec) const;
  /// queries / elapsed time, for a caller-supplied query count.
  double throughput(const DeviceSpec& spec, std::uint64_t queries) const;

  /// Merges another kernel's counters into this one (multi-launch runs).
  void merge(const KernelMetrics& other);
};

}  // namespace harmonia::gpusim
