#include "gpusim/metrics.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace harmonia::gpusim {

double KernelMetrics::warp_coherence() const {
  if (steps == 0) return 1.0;
  return static_cast<double>(coherent_steps) / static_cast<double>(steps);
}

double KernelMetrics::memory_divergence() const {
  if (loads == 0) return 0.0;
  return static_cast<double>(divergent_loads) / static_cast<double>(loads);
}

double KernelMetrics::avg_transactions_per_warp() const {
  if (warps == 0) return 0.0;
  return static_cast<double>(transactions) / static_cast<double>(warps);
}

double KernelMetrics::elapsed_cycles(const DeviceSpec& spec) const {
  // Per-SM: the warp scheduler overlaps memory latency with other warps'
  // compute, so an SM is bound by the larger of its compute work and its
  // latency-hidden memory work.
  double worst_sm = 0.0;
  for (std::size_t sm = 0; sm < sm_compute_cycles.size(); ++sm) {
    const double hiding = std::max<double>(
        1.0, std::min<double>(static_cast<double>(sm_resident_warps[sm]),
                              static_cast<double>(spec.max_resident_warps_per_sm)));
    const double compute = static_cast<double>(sm_compute_cycles[sm]);
    const double mem = static_cast<double>(sm_mem_cycles[sm]) / hiding;
    worst_sm = std::max(worst_sm, std::max(compute, mem));
  }
  // Device-wide: DRAM bandwidth is shared by all SMs.
  const double dram = static_cast<double>(dram_transactions) * spec.dram_cycles_per_txn;
  return std::max(worst_sm, dram) + spec.launch_overhead_cycles;
}

double KernelMetrics::elapsed_seconds(const DeviceSpec& spec) const {
  return elapsed_cycles(spec) / (spec.clock_ghz * 1e9);
}

double KernelMetrics::throughput(const DeviceSpec& spec, std::uint64_t queries) const {
  const double secs = elapsed_seconds(spec);
  HARMONIA_CHECK(secs > 0.0);
  return static_cast<double>(queries) / secs;
}

void KernelMetrics::merge(const KernelMetrics& other) {
  warps += other.warps;
  steps += other.steps;
  coherent_steps += other.coherent_steps;
  loads += other.loads;
  divergent_loads += other.divergent_loads;
  transactions += other.transactions;
  dram_transactions += other.dram_transactions;
  l2_hits += other.l2_hits;
  readonly_hits += other.readonly_hits;
  const_hits += other.const_hits;
  if (sm_compute_cycles.size() < other.sm_compute_cycles.size()) {
    sm_compute_cycles.resize(other.sm_compute_cycles.size(), 0);
    sm_mem_cycles.resize(other.sm_mem_cycles.size(), 0);
    sm_resident_warps.resize(other.sm_resident_warps.size(), 0);
  }
  for (std::size_t i = 0; i < other.sm_compute_cycles.size(); ++i) {
    sm_compute_cycles[i] += other.sm_compute_cycles[i];
    sm_mem_cycles[i] += other.sm_mem_cycles[i];
    sm_resident_warps[i] += other.sm_resident_warps[i];
  }
}

}  // namespace harmonia::gpusim
