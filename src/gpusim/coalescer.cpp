#include "gpusim/coalescer.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace harmonia::gpusim {

std::vector<std::uint64_t> coalesce(std::span<const std::uint64_t> addrs, LaneMask active,
                                    unsigned bytes_per_lane, unsigned line_bytes) {
  HARMONIA_CHECK(bytes_per_lane > 0);
  HARMONIA_CHECK(line_bytes > 0);
  std::vector<std::uint64_t> lines;
  lines.reserve(active_count(active));
  for (unsigned lane = 0; lane < addrs.size(); ++lane) {
    if (!lane_active(active, lane)) continue;
    const std::uint64_t first = addrs[lane] / line_bytes;
    const std::uint64_t last = (addrs[lane] + bytes_per_lane - 1) / line_bytes;
    for (std::uint64_t line = first; line <= last; ++line) lines.push_back(line);
  }
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  return lines;
}

}  // namespace harmonia::gpusim
