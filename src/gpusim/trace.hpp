// Optional per-warp execution tracing — the simulator's analogue of a
// kernel timeline capture. When enabled on a Device, every SIMT step and
// warp-wide memory access is recorded; kernels need no changes.
//
// Used for debugging kernels (why is this warp divergent?) and in tests
// that assert on exact access sequences. Off by default: recording costs
// one vector push per event.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "gpusim/lane_mask.hpp"

namespace harmonia::gpusim {

enum class TraceEventKind : std::uint8_t {
  kCompute,  ///< a masked SIMT instruction step
  kLoad,     ///< a warp-wide load (gather/touch)
  kStore,    ///< a warp-wide store (scatter)
};

/// Which level of the hierarchy served the slowest line of an access.
enum class ServedBy : std::uint8_t { kNone, kConst, kReadOnly, kL2, kDram };

struct TraceEvent {
  std::uint64_t warp = 0;
  unsigned sm = 0;
  TraceEventKind kind = TraceEventKind::kCompute;
  LaneMask mask = 0;
  /// Line transactions of a load/store (0 for compute).
  std::uint32_t transactions = 0;
  ServedBy served_by = ServedBy::kNone;
  /// Cycles this event charged to its warp.
  std::uint64_t cycles = 0;
};

const char* to_string(TraceEventKind kind);
const char* to_string(ServedBy level);

/// Bounded event log. Device owns one; WarpCtx appends when enabled.
class Trace {
 public:
  /// Starts recording, keeping at most `capacity` events (later events
  /// are dropped and counted).
  void enable(std::size_t capacity = 1 << 20);
  void disable();
  bool enabled() const { return enabled_; }

  void record(const TraceEvent& event);
  void clear();

  const std::vector<TraceEvent>& events() const { return events_; }
  std::uint64_t dropped() const { return dropped_; }

  /// One line per event: "warp=3 sm=1 load mask=ffffffff txns=2 dram 400cy".
  void dump(std::ostream& os) const;

 private:
  bool enabled_ = false;
  std::size_t capacity_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace harmonia::gpusim
