#include "gpusim/trace.hpp"

#include <iomanip>

namespace harmonia::gpusim {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kCompute: return "compute";
    case TraceEventKind::kLoad: return "load";
    case TraceEventKind::kStore: return "store";
  }
  return "?";
}

const char* to_string(ServedBy level) {
  switch (level) {
    case ServedBy::kNone: return "-";
    case ServedBy::kConst: return "const";
    case ServedBy::kReadOnly: return "ro";
    case ServedBy::kL2: return "l2";
    case ServedBy::kDram: return "dram";
  }
  return "?";
}

void Trace::enable(std::size_t capacity) {
  enabled_ = true;
  capacity_ = capacity;
  events_.clear();
  events_.reserve(std::min<std::size_t>(capacity, 1 << 16));
  dropped_ = 0;
}

void Trace::disable() { enabled_ = false; }

void Trace::record(const TraceEvent& event) {
  if (!enabled_) return;
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
}

void Trace::clear() {
  events_.clear();
  dropped_ = 0;
}

void Trace::dump(std::ostream& os) const {
  for (const auto& e : events_) {
    os << "warp=" << e.warp << " sm=" << e.sm << ' ' << to_string(e.kind) << " mask=0x"
       << std::hex << std::setw(8) << std::setfill('0') << e.mask << std::dec
       << std::setfill(' ');
    if (e.kind != TraceEventKind::kCompute) {
      os << " txns=" << e.transactions << ' ' << to_string(e.served_by);
    }
    os << ' ' << e.cycles << "cy\n";
  }
  if (dropped_ > 0) os << "(" << dropped_ << " events dropped)\n";
}

}  // namespace harmonia::gpusim
