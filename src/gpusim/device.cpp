#include "gpusim/device.hpp"

#include <algorithm>

namespace harmonia::gpusim {

namespace {
/// Constant caches are small; 2 KiB per SM models the 8 KiB broadcast
/// cache conservatively sliced for our working set.
constexpr std::uint64_t kConstCacheBytes = 2 << 10;
}  // namespace

Device::Device(DeviceSpec spec)
    : spec_((spec.validate(), std::move(spec))),
      memory_(spec_.global_mem_bytes, spec_.const_mem_bytes),
      l2_(spec_.l2_bytes, spec_.line_bytes, spec_.cache_ways) {
  readonly_.reserve(spec_.num_sms);
  const_.reserve(spec_.num_sms);
  for (unsigned sm = 0; sm < spec_.num_sms; ++sm) {
    readonly_.emplace_back(spec_.readonly_cache_bytes_per_sm, spec_.line_bytes,
                           spec_.cache_ways);
    const_.emplace_back(kConstCacheBytes, spec_.line_bytes, spec_.cache_ways);
  }
}

Cache& Device::readonly_cache(unsigned sm) {
  HARMONIA_CHECK(sm < readonly_.size());
  return readonly_[sm];
}

Cache& Device::const_cache(unsigned sm) {
  HARMONIA_CHECK(sm < const_.size());
  return const_[sm];
}

void Device::flush_caches() {
  l2_.flush();
  for (auto& c : readonly_) c.flush();
  for (auto& c : const_) c.flush();
}

KernelMetrics Device::launch(std::uint64_t num_warps, const WarpKernel& kernel) {
  HARMONIA_CHECK(num_warps > 0);
  KernelMetrics metrics;
  metrics.sm_compute_cycles.assign(spec_.num_sms, 0);
  metrics.sm_mem_cycles.assign(spec_.num_sms, 0);
  metrics.sm_resident_warps.assign(spec_.num_sms, 0);
  active_metrics_ = &metrics;

  for (std::uint64_t w = 0; w < num_warps; ++w) {
    const auto sm = static_cast<unsigned>(w % spec_.num_sms);
    WarpCtx ctx(*this, w, sm);
    kernel(ctx);
    metrics.sm_compute_cycles[sm] += ctx.compute_cycles_;
    metrics.sm_mem_cycles[sm] += ctx.mem_cycles_;
    metrics.sm_resident_warps[sm] += 1;
    ++metrics.warps;
  }

  active_metrics_ = nullptr;
  return metrics;
}

unsigned WarpCtx::warp_size() const { return device_.spec_.warp_size; }

const DeviceSpec& WarpCtx::spec() const { return device_.spec_; }

void WarpCtx::compute(LaneMask active, unsigned steps) {
  HARMONIA_DCHECK(active != 0);
  KernelMetrics& m = *device_.active_metrics_;
  m.steps += steps;
  if (active == full_mask(warp_size())) m.coherent_steps += steps;
  const std::uint64_t cycles =
      static_cast<std::uint64_t>(steps) * device_.spec_.cycles_per_compute_step;
  compute_cycles_ += cycles;
  if (device_.trace_.enabled()) {
    device_.trace_.record({warp_id_, sm_id_, TraceEventKind::kCompute, active, 0,
                           ServedBy::kNone, cycles});
  }
}

void WarpCtx::touch(LaneMask active, std::span<const std::uint64_t> addrs,
                    unsigned bytes_per_lane) {
  mem_cycles_ += account_access(active, addrs, bytes_per_lane, TraceEventKind::kLoad);
}

std::uint64_t WarpCtx::account_access(LaneMask active, std::span<const std::uint64_t> addrs,
                                      unsigned bytes_per_lane, TraceEventKind kind) {
  if (active == 0) return 0;
  KernelMetrics& m = *device_.active_metrics_;
  const DeviceSpec& spec = device_.spec_;

  const auto lines = coalesce(addrs, active, bytes_per_lane, spec.line_bytes);
  HARMONIA_DCHECK(!lines.empty());

  ++m.loads;
  if (lines.size() > 1) ++m.divergent_loads;
  m.transactions += lines.size();

  // The warp's load completes when its slowest line is served; additional
  // transactions serialize in the load/store unit.
  std::uint64_t worst_latency = 0;
  ServedBy worst_level = ServedBy::kNone;
  auto slower = [&](std::uint64_t lat, ServedBy level) {
    if (lat >= worst_latency) {
      worst_latency = lat;
      worst_level = level;
    }
  };
  for (std::uint64_t line : lines) {
    std::uint64_t lat;
    ServedBy level;
    // Line addresses of constant space retain the kConstBase tag, so the
    // two spaces never alias in the shared L2.
    if (line >= kConstBase / spec.line_bytes) {
      if (device_.const_[sm_id_].access(line)) {
        ++m.const_hits;
        lat = spec.lat_const;
        level = ServedBy::kConst;
      } else if (device_.l2_.access(line)) {
        ++m.l2_hits;
        lat = spec.lat_l2;
        level = ServedBy::kL2;
      } else {
        ++m.dram_transactions;
        lat = spec.lat_dram;
        level = ServedBy::kDram;
      }
    } else {
      if (device_.readonly_[sm_id_].access(line)) {
        ++m.readonly_hits;
        lat = spec.lat_readonly;
        level = ServedBy::kReadOnly;
      } else if (device_.l2_.access(line)) {
        ++m.l2_hits;
        lat = spec.lat_l2;
        level = ServedBy::kL2;
      } else {
        ++m.dram_transactions;
        lat = spec.lat_dram;
        level = ServedBy::kDram;
      }
    }
    slower(lat, level);
  }
  const std::uint64_t cycles =
      worst_latency + static_cast<std::uint64_t>(lines.size() - 1) * spec.txn_issue_cycles;
  if (device_.trace_.enabled()) {
    device_.trace_.record({warp_id_, sm_id_, kind, active,
                           static_cast<std::uint32_t>(lines.size()), worst_level, cycles});
  }
  return cycles;
}

}  // namespace harmonia::gpusim
