// Lane activity masks for SIMT warp execution (up to 32 lanes).
#pragma once

#include <bit>
#include <cstdint>

#include "common/expect.hpp"

namespace harmonia::gpusim {

using LaneMask = std::uint32_t;

/// Mask with the low `lanes` bits set (the full warp for warp_size lanes).
inline LaneMask full_mask(unsigned lanes) {
  HARMONIA_DCHECK(lanes >= 1 && lanes <= 32);
  return lanes == 32 ? ~LaneMask{0} : ((LaneMask{1} << lanes) - 1);
}

inline LaneMask lane_bit(unsigned lane) {
  HARMONIA_DCHECK(lane < 32);
  return LaneMask{1} << lane;
}

inline bool lane_active(LaneMask mask, unsigned lane) { return (mask & lane_bit(lane)) != 0; }

inline unsigned active_count(LaneMask mask) { return static_cast<unsigned>(std::popcount(mask)); }

/// Mask covering lanes [first, first+count).
inline LaneMask group_mask(unsigned first, unsigned count) {
  HARMONIA_DCHECK(first + count <= 32);
  return full_mask(count) << first;
}

}  // namespace harmonia::gpusim
