// Architectural parameters of the simulated GPU.
//
// The constants come from public datasheets / the CUDA programming guide
// and are fixed once per device preset — they are not tuned per experiment
// (see DESIGN.md §5). Two presets mirror the paper's hardware: TITAN V
// (Volta, the main evaluation device) and Tesla K80 (Kepler, used for the
// NTG model validation in §4.2).
#pragma once

#include <cstdint>
#include <string>

namespace harmonia::gpusim {

struct DeviceSpec {
  std::string name;

  // SIMT geometry.
  unsigned warp_size = 32;
  unsigned num_sms = 80;
  /// Warps the scheduler can keep resident per SM; bounds latency hiding.
  unsigned max_resident_warps_per_sm = 64;

  // Memory system.
  std::uint64_t global_mem_bytes = 12ULL << 30;
  std::uint64_t const_mem_bytes = 64 << 10;  // classic CUDA limit
  std::uint64_t l2_bytes = 4608 << 10;
  std::uint64_t readonly_cache_bytes_per_sm = 128 << 10;
  unsigned line_bytes = 128;
  unsigned cache_ways = 8;

  // Latencies (cycles) by the level that finally serves a line.
  unsigned lat_dram = 400;
  unsigned lat_l2 = 200;
  unsigned lat_readonly = 30;
  unsigned lat_const = 8;
  /// Extra LSU issue cost for each additional transaction of one warp load
  /// (serialization caused by memory divergence).
  unsigned txn_issue_cycles = 4;

  // Compute.
  unsigned cycles_per_compute_step = 4;
  double clock_ghz = 1.455;

  /// Device-wide DRAM bandwidth expressed as cycles per 128 B transaction.
  /// TITAN V: 652.8 GB/s at 1.455 GHz -> 448.7 B/cycle -> 0.285 cyc/line.
  double dram_cycles_per_txn = 0.285;

  /// Fixed kernel launch overhead (cycles at device clock).
  double launch_overhead_cycles = 8000.0;

  std::uint64_t readonly_cache_total_bytes() const {
    return readonly_cache_bytes_per_sm;  // per-SM cache; one instance per SM
  }

  /// Sanity-checks the parameters; Device's constructor calls this so a
  /// hand-built spec fails fast instead of mis-simulating.
  void validate() const;
};

/// TITAN V (Volta GV100): 80 SMs, 1.455 GHz boost, 652.8 GB/s HBM2, 4.5 MiB L2.
DeviceSpec titan_v();

/// Tesla K80 (one GK210 die): 13 SMs, 0.875 GHz, 240 GB/s, 1.5 MiB L2.
DeviceSpec tesla_k80();

}  // namespace harmonia::gpusim
