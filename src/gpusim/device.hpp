// The simulated GPU device and the SIMT warp execution context.
//
// Kernels are written as per-warp C++ callables against WarpCtx, a
// warp-synchronous API: every data access goes through gather()/touch()
// (which runs the coalescer and the cache hierarchy and charges cycles),
// and every instruction issue goes through compute() with an explicit
// active-lane mask (which feeds the warp-coherence metric). This keeps
// simulated kernels structurally identical to their CUDA counterparts
// while making divergence and memory behaviour observable.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "gpusim/cache.hpp"
#include "gpusim/coalescer.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/lane_mask.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/metrics.hpp"
#include "gpusim/trace.hpp"

namespace harmonia::gpusim {

class Device;

/// Execution context handed to a kernel, one per warp. Not copyable; only
/// Device::launch creates these.
class WarpCtx {
 public:
  WarpCtx(const WarpCtx&) = delete;
  WarpCtx& operator=(const WarpCtx&) = delete;

  std::uint64_t warp_id() const { return warp_id_; }
  unsigned sm_id() const { return sm_id_; }
  unsigned warp_size() const;
  const DeviceSpec& spec() const;

  /// Issues `steps` SIMT instruction steps with the given active mask.
  /// A step is coherent iff every lane of the warp is active.
  void compute(LaneMask active, unsigned steps = 1);

  /// Warp-wide load: coalesces the active lanes' addresses, walks the
  /// cache hierarchy per line, charges memory cycles, and reads the data
  /// into `out[lane]` for each active lane (inactive lanes untouched).
  template <typename T>
  void gather(LaneMask active, std::span<const std::uint64_t> addrs, std::span<T> out);

  /// Accounting-only warp load (no data movement) for accesses whose
  /// values the kernel computes another way.
  void touch(LaneMask active, std::span<const std::uint64_t> addrs, unsigned bytes_per_lane);

  /// Warp-wide store to global memory (one value per active lane).
  template <typename T>
  void scatter(LaneMask active, std::span<const std::uint64_t> addrs,
               std::span<const T> values);

 private:
  friend class Device;
  WarpCtx(Device& device, std::uint64_t warp_id, unsigned sm_id)
      : device_(device), warp_id_(warp_id), sm_id_(sm_id) {}

  /// Runs a warp access through the coalescer + caches; returns cycles.
  std::uint64_t account_access(LaneMask active, std::span<const std::uint64_t> addrs,
                               unsigned bytes_per_lane, TraceEventKind kind);

  Device& device_;
  std::uint64_t warp_id_;
  unsigned sm_id_;
  std::uint64_t compute_cycles_ = 0;
  std::uint64_t mem_cycles_ = 0;
};

using WarpKernel = std::function<void(WarpCtx&)>;

class Device {
 public:
  explicit Device(DeviceSpec spec);

  const DeviceSpec& spec() const { return spec_; }
  Memory& memory() { return memory_; }
  const Memory& memory() const { return memory_; }

  /// Runs `kernel` once per warp. Warps are assigned to SMs round-robin
  /// and executed sequentially (the cycle model, not execution order,
  /// supplies concurrency — see DESIGN.md §5).
  KernelMetrics launch(std::uint64_t num_warps, const WarpKernel& kernel);

  /// Empties all caches (between unrelated experiments).
  void flush_caches();

  Cache& l2() { return l2_; }
  Cache& readonly_cache(unsigned sm);
  Cache& const_cache(unsigned sm);

  /// Per-warp execution trace (off by default; see gpusim/trace.hpp).
  Trace& trace() { return trace_; }

 private:
  friend class WarpCtx;

  DeviceSpec spec_;
  Memory memory_;
  Cache l2_;
  std::vector<Cache> readonly_;  // one per SM
  std::vector<Cache> const_;     // one per SM
  Trace trace_;
  KernelMetrics* active_metrics_ = nullptr;
};

// ---- template implementations ----

template <typename T>
void WarpCtx::gather(LaneMask active, std::span<const std::uint64_t> addrs,
                     std::span<T> out) {
  HARMONIA_DCHECK(addrs.size() <= warp_size());
  HARMONIA_DCHECK(out.size() >= addrs.size());
  mem_cycles_ += account_access(active, addrs, sizeof(T), TraceEventKind::kLoad);
  for (unsigned lane = 0; lane < addrs.size(); ++lane) {
    if (lane_active(active, lane)) out[lane] = device_.memory().read<T>(addrs[lane]);
  }
}

template <typename T>
void WarpCtx::scatter(LaneMask active, std::span<const std::uint64_t> addrs,
                      std::span<const T> values) {
  HARMONIA_DCHECK(addrs.size() <= warp_size());
  mem_cycles_ += account_access(active, addrs, sizeof(T), TraceEventKind::kStore);
  for (unsigned lane = 0; lane < addrs.size(); ++lane) {
    if (lane_active(active, lane)) device_.memory().write<T>(addrs[lane], values[lane]);
  }
}

}  // namespace harmonia::gpusim
