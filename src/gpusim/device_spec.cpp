#include "gpusim/device_spec.hpp"

#include <bit>

#include "common/expect.hpp"

namespace harmonia::gpusim {

DeviceSpec titan_v() {
  DeviceSpec spec;
  spec.name = "TITAN V";
  spec.warp_size = 32;
  spec.num_sms = 80;
  spec.max_resident_warps_per_sm = 64;
  spec.global_mem_bytes = 12ULL << 30;
  spec.const_mem_bytes = 64 << 10;
  spec.l2_bytes = 4608 << 10;
  spec.readonly_cache_bytes_per_sm = 128 << 10;
  spec.line_bytes = 128;
  spec.cache_ways = 8;
  spec.lat_dram = 400;
  spec.lat_l2 = 200;
  spec.lat_readonly = 30;
  spec.lat_const = 8;
  spec.txn_issue_cycles = 4;
  spec.cycles_per_compute_step = 4;
  spec.clock_ghz = 1.455;
  spec.dram_cycles_per_txn = 0.285;
  spec.launch_overhead_cycles = 8000.0;
  return spec;
}

DeviceSpec tesla_k80() {
  DeviceSpec spec;
  spec.name = "Tesla K80";
  spec.warp_size = 32;
  spec.num_sms = 13;
  spec.max_resident_warps_per_sm = 64;
  spec.global_mem_bytes = 12ULL << 30;
  spec.const_mem_bytes = 64 << 10;
  spec.l2_bytes = 1536 << 10;
  spec.readonly_cache_bytes_per_sm = 48 << 10;
  spec.line_bytes = 128;
  spec.cache_ways = 8;
  spec.lat_dram = 500;
  spec.lat_l2 = 220;
  spec.lat_readonly = 40;
  spec.lat_const = 10;
  spec.txn_issue_cycles = 6;
  // Kepler single-issue cores are relatively slower per comparison step.
  spec.cycles_per_compute_step = 6;
  spec.clock_ghz = 0.875;
  // 240 GB/s at 0.875 GHz -> 274 B/cycle -> 0.467 cyc per 128 B line.
  spec.dram_cycles_per_txn = 0.467;
  spec.launch_overhead_cycles = 10000.0;
  return spec;
}

void DeviceSpec::validate() const {
  HARMONIA_CHECK_MSG(warp_size >= 1 && warp_size <= 32, "warp_size must be in [1, 32]");
  HARMONIA_CHECK_MSG(num_sms >= 1, "need at least one SM");
  HARMONIA_CHECK_MSG(max_resident_warps_per_sm >= 1, "need resident warps");
  HARMONIA_CHECK_MSG(std::has_single_bit(static_cast<unsigned>(line_bytes)),
                     "line_bytes must be a power of two");
  HARMONIA_CHECK_MSG(global_mem_bytes > 0 && const_mem_bytes > 0, "memory sizes");
  HARMONIA_CHECK_MSG(clock_ghz > 0.0, "clock must be positive");
  HARMONIA_CHECK_MSG(dram_cycles_per_txn > 0.0, "DRAM bandwidth must be positive");
  HARMONIA_CHECK_MSG(cycles_per_compute_step >= 1, "compute step cost");
}

}  // namespace harmonia::gpusim
