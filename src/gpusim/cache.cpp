#include "gpusim/cache.hpp"

#include "common/expect.hpp"

namespace harmonia::gpusim {

Cache::Cache(std::uint64_t bytes, unsigned line_bytes, unsigned ways)
    : line_bytes_(line_bytes), ways_(ways), capacity_bytes_(bytes) {
  HARMONIA_CHECK(line_bytes > 0 && ways > 0);
  HARMONIA_CHECK_MSG(bytes % (static_cast<std::uint64_t>(line_bytes) * ways) == 0,
                     "cache capacity must be a multiple of line_bytes*ways");
  num_sets_ = bytes / line_bytes / ways;
  HARMONIA_CHECK(num_sets_ > 0);
  slots_.resize(num_sets_ * ways_);
}

std::size_t Cache::set_index(std::uint64_t line_addr) const {
  // line_addr is already line-granular (addr / line_bytes from the coalescer),
  // so a simple modulo distributes consecutive lines across sets.
  return static_cast<std::size_t>(line_addr % num_sets_);
}

bool Cache::access(std::uint64_t line_addr) {
  Way* set = &slots_[set_index(line_addr) * ways_];
  ++tick_;
  Way* lru = set;
  for (unsigned w = 0; w < ways_; ++w) {
    if (set[w].tag == line_addr) {
      set[w].lru = tick_;
      ++hits_;
      return true;
    }
    if (set[w].lru < lru->lru) lru = &set[w];
  }
  ++misses_;
  lru->tag = line_addr;
  lru->lru = tick_;
  return false;
}

bool Cache::contains(std::uint64_t line_addr) const {
  const Way* set = &slots_[set_index(line_addr) * ways_];
  for (unsigned w = 0; w < ways_; ++w) {
    if (set[w].tag == line_addr) return true;
  }
  return false;
}

void Cache::flush() {
  for (auto& way : slots_) way = Way{};
  tick_ = 0;
}

}  // namespace harmonia::gpusim
