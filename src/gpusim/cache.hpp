// Set-associative LRU cache model, keyed by line address.
//
// Used for the L2 (device-wide), the per-SM read-only data cache, and the
// per-SM constant cache. Only tags are tracked — data always lives in
// Memory — so a Cache is cheap enough to instantiate per SM.
#pragma once

#include <cstdint>
#include <vector>

namespace harmonia::gpusim {

class Cache {
 public:
  /// `bytes` is the capacity; `line_bytes` the fill granularity;
  /// `ways` the associativity. bytes must be a multiple of line_bytes*ways.
  Cache(std::uint64_t bytes, unsigned line_bytes, unsigned ways);

  /// Probes and fills: returns true on hit. A miss evicts LRU and inserts.
  bool access(std::uint64_t line_addr);

  /// Probe without fill (used by tests).
  bool contains(std::uint64_t line_addr) const;

  void flush();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t capacity_bytes() const { return capacity_bytes_; }
  void reset_stats() { hits_ = misses_ = 0; }

  /// Back to construction state: cold tags and zeroed counters (the
  /// fault-audit path resets caches after a device re-image).
  void reset() {
    flush();
    reset_stats();
  }

 private:
  struct Way {
    std::uint64_t tag = kInvalid;
    std::uint64_t lru = 0;
  };
  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};

  std::size_t set_index(std::uint64_t line_addr) const;

  unsigned line_bytes_;
  unsigned ways_;
  std::size_t num_sets_;
  std::uint64_t capacity_bytes_;
  std::vector<Way> slots_;  // num_sets_ * ways_, row-major by set
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace harmonia::gpusim
