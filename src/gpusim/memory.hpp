// Simulated device memory: a global segment and a constant segment.
//
// Addresses are plain 64-bit integers in a single simulated address space;
// the constant segment lives at kConstBase so the warp-load path can route
// accesses to the constant cache by address alone, the way real hardware
// routes `__constant__` accesses through the constant cache.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/expect.hpp"

namespace harmonia::gpusim {

/// Constant-memory addresses are offset by this base. Global allocations
/// can never reach it (checked at malloc time).
inline constexpr std::uint64_t kConstBase = 1ULL << 48;

inline bool is_const_address(std::uint64_t addr) { return addr >= kConstBase; }

/// Typed device pointer: an address plus element arithmetic. Host code
/// cannot dereference it directly — go through Memory, as with real CUDA.
template <typename T>
struct DevPtr {
  std::uint64_t addr = 0;

  bool is_null() const { return addr == 0; }
  std::uint64_t element_addr(std::uint64_t i) const { return addr + i * sizeof(T); }
  DevPtr<T> offset(std::uint64_t i) const { return DevPtr<T>{element_addr(i)}; }
};

class Memory {
 public:
  Memory(std::uint64_t global_bytes, std::uint64_t const_bytes);

  /// Bump-allocates `count` elements in global memory, 256 B aligned.
  template <typename T>
  DevPtr<T> malloc(std::uint64_t count) {
    return DevPtr<T>{alloc_bytes(count * sizeof(T), /*constant=*/false)};
  }

  /// Allocates in the (small) constant segment; throws if it does not fit.
  template <typename T>
  DevPtr<T> const_malloc(std::uint64_t count) {
    return DevPtr<T>{alloc_bytes(count * sizeof(T), /*constant=*/true)};
  }

  /// Releases everything allocated so far (both segments).
  void free_all();

  template <typename T>
  void copy_to_device(DevPtr<T> dst, std::span<const T> src) {
    write_bytes(dst.addr, src.data(), src.size_bytes());
  }

  template <typename T>
  void copy_to_host(std::span<T> dst, DevPtr<T> src) {
    read_bytes(src.addr, dst.data(), dst.size_bytes());
  }

  /// Simulator-side typed load (used by warp gather after accounting).
  template <typename T>
  T read(std::uint64_t addr) const {
    T out;
    read_bytes(addr, &out, sizeof(T));
    return out;
  }

  template <typename T>
  void write(std::uint64_t addr, const T& value) {
    write_bytes(addr, &value, sizeof(T));
  }

  std::uint64_t global_used() const { return global_used_; }
  std::uint64_t const_used() const { return const_used_; }
  std::uint64_t global_capacity() const { return global_capacity_; }
  std::uint64_t const_capacity() const { return const_.size(); }

  void read_bytes(std::uint64_t addr, void* out, std::size_t n) const;
  void write_bytes(std::uint64_t addr, const void* in, std::size_t n);

 private:
  std::uint64_t alloc_bytes(std::uint64_t bytes, bool constant);

  /// Host backing store for the global segment grows on demand (the
  /// simulated device "has" global_capacity_ bytes, but the host only
  /// commits what allocations actually touch).
  std::vector<std::uint8_t> global_;
  std::vector<std::uint8_t> const_;
  std::uint64_t global_capacity_ = 0;
  std::uint64_t global_used_ = 0;
  std::uint64_t const_used_ = 0;
};

}  // namespace harmonia::gpusim
