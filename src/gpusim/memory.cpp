#include "gpusim/memory.hpp"

namespace harmonia::gpusim {

namespace {
constexpr std::uint64_t kAlign = 256;

std::uint64_t round_up(std::uint64_t v, std::uint64_t align) {
  return (v + align - 1) / align * align;
}
}  // namespace

Memory::Memory(std::uint64_t global_bytes, std::uint64_t const_bytes)
    : const_(const_bytes), global_capacity_(global_bytes) {
  // Address 0 acts as the null device pointer: burn the first alignment unit.
  global_used_ = kAlign;
}

std::uint64_t Memory::alloc_bytes(std::uint64_t bytes, bool constant) {
  HARMONIA_CHECK(bytes > 0);
  if (constant) {
    const std::uint64_t base = round_up(const_used_, kAlign);
    HARMONIA_CHECK_MSG(base + bytes <= const_.size(),
                       "constant segment overflow: need " << bytes << " B at offset " << base
                                                          << ", capacity " << const_.size());
    const_used_ = base + bytes;
    return kConstBase + base;
  }
  const std::uint64_t base = round_up(global_used_, kAlign);
  HARMONIA_CHECK_MSG(base + bytes <= global_capacity_,
                     "global segment overflow: need " << bytes << " B at offset " << base
                                                      << ", capacity " << global_capacity_);
  global_used_ = base + bytes;
  if (global_.size() < global_used_) global_.resize(global_used_);
  return base;
}

void Memory::free_all() {
  global_used_ = kAlign;
  const_used_ = 0;
  global_.clear();
  global_.shrink_to_fit();
  global_.resize(kAlign);
}

void Memory::read_bytes(std::uint64_t addr, void* out, std::size_t n) const {
  if (is_const_address(addr)) {
    const std::uint64_t off = addr - kConstBase;
    HARMONIA_CHECK_MSG(off + n <= const_.size(), "constant read out of bounds at " << off);
    std::memcpy(out, const_.data() + off, n);
  } else {
    HARMONIA_CHECK_MSG(addr + n <= global_.size(), "global read out of bounds at " << addr);
    std::memcpy(out, global_.data() + addr, n);
  }
}

void Memory::write_bytes(std::uint64_t addr, const void* in, std::size_t n) {
  if (is_const_address(addr)) {
    const std::uint64_t off = addr - kConstBase;
    HARMONIA_CHECK_MSG(off + n <= const_.size(), "constant write out of bounds at " << off);
    std::memcpy(const_.data() + off, in, n);
  } else {
    HARMONIA_CHECK_MSG(addr + n <= global_.size(), "global write out of bounds at " << addr);
    std::memcpy(global_.data() + addr, in, n);
  }
}

}  // namespace harmonia::gpusim
