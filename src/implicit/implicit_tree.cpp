#include "implicit/implicit_tree.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/expect.hpp"

namespace harmonia::implicit {

ImplicitTree ImplicitTree::build(std::span<const btree::Entry> entries, unsigned fanout) {
  HARMONIA_CHECK_MSG(fanout >= 4, "fanout must be >= 4");
  HARMONIA_CHECK_MSG(!entries.empty(), "cannot build an empty implicit tree");
  for (std::size_t i = 1; i < entries.size(); ++i) {
    HARMONIA_CHECK_MSG(entries[i - 1].key < entries[i].key,
                       "build input must be sorted and distinct");
  }
  HARMONIA_CHECK_MSG(entries.back().key != kPadKey, "kPadKey is reserved");

  ImplicitTree out;
  out.fanout_ = fanout;
  const unsigned kpn = fanout - 1;
  out.num_nodes_ =
      static_cast<std::uint32_t>((entries.size() + kpn - 1) / kpn);
  out.num_keys_ = entries.size();

  // Height of the complete shape: levels 1, k, k^2, ...
  std::uint64_t covered = 0;
  std::uint64_t level_nodes = 1;
  while (covered < out.num_nodes_) {
    covered += level_nodes;
    level_nodes *= fanout;
    ++out.height_;
  }

  out.keys_.assign(static_cast<std::size_t>(out.num_nodes_) * kpn, kPadKey);
  out.values_.assign(out.keys_.size(), Value{0});
  std::uint64_t cursor = 0;
  out.assign_inorder(0, entries, cursor);
  HARMONIA_CHECK(cursor == entries.size());
  return out;
}

void ImplicitTree::assign_inorder(std::uint32_t node, std::span<const btree::Entry> entries,
                                  std::uint64_t& cursor) {
  if (node >= num_nodes_) return;
  const unsigned kpn = keys_per_node();
  for (unsigned j = 0; j < fanout_; ++j) {
    assign_inorder(child(node, j), entries, cursor);
    if (j < kpn && cursor < entries.size()) {
      keys_[static_cast<std::size_t>(node) * kpn + j] = entries[cursor].key;
      values_[static_cast<std::size_t>(node) * kpn + j] = entries[cursor].value;
      ++cursor;
    }
  }
}

std::span<const Key> ImplicitTree::node_keys(std::uint32_t node) const {
  HARMONIA_CHECK(node < num_nodes_);
  return std::span<const Key>(keys_).subspan(
      static_cast<std::size_t>(node) * keys_per_node(), keys_per_node());
}

std::optional<Value> ImplicitTree::search(Key key) const {
  if (key == kPadKey) return std::nullopt;
  std::uint32_t node = 0;
  while (node < num_nodes_) {
    const auto slots = node_keys(node);
    // Keys live at every level of a k-ary search tree: equality can hit
    // before reaching the bottom.
    const auto it = std::lower_bound(slots.begin(), slots.end(), key);
    if (it != slots.end() && *it == key) {
      return values_[static_cast<std::size_t>(node) * keys_per_node() +
                     static_cast<std::size_t>(it - slots.begin())];
    }
    const auto upper = std::upper_bound(slots.begin(), slots.end(), key);
    node = child(node, static_cast<unsigned>(upper - slots.begin()));
  }
  return std::nullopt;
}

namespace {

/// In-order traversal over key slots; visitor returns false to stop.
template <typename Fn>
bool inorder_slots(const ImplicitTree& tree, std::uint32_t node, Fn&& fn) {
  if (node >= tree.num_nodes()) return true;
  for (unsigned j = 0; j < tree.fanout(); ++j) {
    if (!inorder_slots(tree, tree.child(node, j), fn)) return false;
    if (j < tree.keys_per_node()) {
      if (!fn(node, j)) return false;
    }
  }
  return true;
}

}  // namespace

std::vector<btree::Entry> ImplicitTree::range(Key lo, Key hi, std::size_t limit) const {
  std::vector<btree::Entry> out;
  if (lo > hi || num_nodes_ == 0) return out;
  // In-order walk with subtree pruning: subtree j of a node holds keys in
  // (keys[j-1], keys[j]); skip it when that interval misses [lo, hi].
  struct Walker {
    const ImplicitTree& tree;
    Key lo, hi;
    std::size_t limit;
    std::vector<btree::Entry>& out;

    bool visit(std::uint32_t node) {
      if (node >= tree.num_nodes()) return true;
      const auto slots = tree.node_keys(node);
      const unsigned kpn = tree.keys_per_node();
      for (unsigned j = 0; j < tree.fanout(); ++j) {
        const bool skip_subtree =
            (j < kpn && slots[j] < lo) ||          // subtree keys < slots[j] <= lo
            (j > 0 && slots[j - 1] > hi);          // subtree keys > slots[j-1] > hi
        if (!skip_subtree && !visit(tree.child(node, j))) return false;
        if (j < kpn) {
          const Key k = slots[j];
          if (k == kPadKey || k > hi) return true;  // in-order: nothing later fits
          if (k >= lo) {
            out.push_back({k, tree.values()[static_cast<std::size_t>(node) * kpn + j]});
            if (limit != 0 && out.size() >= limit) return false;
          }
        }
      }
      return true;
    }
  };
  Walker walker{*this, lo, hi, limit, out};
  walker.visit(0);
  return out;
}

ImplicitTree ImplicitTree::rebuild_with(std::span<const btree::Entry> upserts,
                                        std::span<const Key> removed) const {
  // Collect the current contents in order...
  std::vector<btree::Entry> current;
  current.reserve(num_keys_);
  inorder_slots(*this, 0, [&](std::uint32_t node, unsigned j) {
    const std::size_t slot = static_cast<std::size_t>(node) * keys_per_node() + j;
    if (keys_[slot] != kPadKey) current.push_back({keys_[slot], values_[slot]});
    return true;
  });

  // ...merge the batch, then rebuild from scratch (the whole point).
  std::vector<btree::Entry> adds(upserts.begin(), upserts.end());
  std::sort(adds.begin(), adds.end(),
            [](const btree::Entry& a, const btree::Entry& b) { return a.key < b.key; });
  std::unordered_set<Key> dropped(removed.begin(), removed.end());

  std::vector<btree::Entry> merged;
  merged.reserve(current.size() + adds.size());
  std::size_t i = 0, j = 0;
  while (i < current.size() || j < adds.size()) {
    btree::Entry next;
    if (j >= adds.size() || (i < current.size() && current[i].key < adds[j].key)) {
      next = current[i++];
    } else {
      if (i < current.size() && current[i].key == adds[j].key) ++i;  // overwritten
      next = adds[j++];
    }
    if (!dropped.count(next.key)) merged.push_back(next);
  }
  HARMONIA_CHECK_MSG(!merged.empty(), "rebuild removed every key");
  return build(merged, fanout_);
}

void ImplicitTree::validate() const {
  HARMONIA_CHECK(num_nodes_ > 0);
  HARMONIA_CHECK(keys_.size() == static_cast<std::size_t>(num_nodes_) * keys_per_node());
  HARMONIA_CHECK(values_.size() == keys_.size());

  // In-order slots: strictly ascending real keys, then only pads.
  std::uint64_t seen = 0;
  bool pad_seen = false;
  std::optional<Key> prev;
  inorder_slots(*this, 0, [&](std::uint32_t node, unsigned j) {
    const Key k = keys_[static_cast<std::size_t>(node) * keys_per_node() + j];
    if (k == kPadKey) {
      pad_seen = true;
      return true;
    }
    HARMONIA_CHECK_MSG(!pad_seen, "real key after pad in in-order position");
    HARMONIA_CHECK_MSG(!prev || *prev < k, "in-order keys not strictly ascending");
    prev = k;
    ++seen;
    return true;
  });
  HARMONIA_CHECK_MSG(seen == num_keys_, "key count mismatch");
}

}  // namespace harmonia::implicit
