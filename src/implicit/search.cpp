#include "implicit/search.hpp"

#include <array>

#include "common/expect.hpp"
#include "harmonia/search.hpp"  // resolve_group_size

namespace harmonia::implicit {

using gpusim::LaneMask;

ImplicitDeviceImage ImplicitDeviceImage::upload(gpusim::Device& device,
                                                const ImplicitTree& tree) {
  ImplicitDeviceImage img;
  img.fanout = tree.fanout();
  img.height = tree.height();
  img.num_nodes = tree.num_nodes();
  auto& mem = device.memory();
  img.keys = mem.malloc<Key>(tree.keys().size());
  mem.copy_to_device(img.keys, tree.keys());
  img.values = mem.malloc<Value>(tree.values().size());
  mem.copy_to_device(img.values, tree.values());
  return img;
}

ImplicitSearchStats implicit_search_batch(gpusim::Device& device,
                                          const ImplicitDeviceImage& image,
                                          gpusim::DevPtr<Key> queries, std::uint64_t n,
                                          gpusim::DevPtr<Value> out_values,
                                          unsigned group_size) {
  HARMONIA_CHECK(n > 0);
  const gpusim::DeviceSpec& spec = device.spec();
  const unsigned warp = spec.warp_size;
  const unsigned gs = harmonia::resolve_group_size(spec, image.fanout, group_size);
  const unsigned qpw = warp / gs;
  const unsigned kpn = image.keys_per_node();
  const unsigned chunks_per_node = (kpn + gs - 1) / gs;
  const std::uint64_t num_warps = (n + qpw - 1) / qpw;

  auto kernel = [&](gpusim::WarpCtx& w) {
    const std::uint64_t base = w.warp_id() * qpw;
    const unsigned nq = static_cast<unsigned>(std::min<std::uint64_t>(qpw, n - base));

    std::array<std::uint64_t, 32> addrs{};
    std::array<Key, 32> lane_keys{};
    std::array<Key, 32> target{};
    std::array<std::uint32_t, 32> node{};
    std::array<unsigned, 32> sep_leq{};
    std::array<bool, 32> done{};
    std::array<bool, 32> found{};
    std::array<std::uint32_t, 32> found_node{};
    std::array<unsigned, 32> found_slot{};

    LaneMask leader_mask = 0;
    for (unsigned g = 0; g < nq; ++g) {
      leader_mask |= gpusim::lane_bit(g * gs);
      addrs[g * gs] = queries.element_addr(base + g);
    }
    {
      std::array<Key, 32> qvals{};
      w.gather<Key>(leader_mask, std::span(addrs.data(), warp), qvals);
      for (unsigned g = 0; g < nq; ++g) target[g] = qvals[g * gs];
      w.compute(leader_mask);
    }

    // Keys can match at any level, and groups can run out of tree at
    // different depths: the warp loops until every group is done.
    for (unsigned level = 0; level < image.height; ++level) {
      for (unsigned g = 0; g < nq; ++g) {
        if (node[g] >= image.num_nodes) done[g] = true;
        sep_leq[g] = 0;
      }
      bool any_active = false;
      for (unsigned g = 0; g < nq; ++g) any_active |= !done[g];
      if (!any_active) break;

      std::array<bool, 32> scanned{};  // group finished this node's scan
      for (unsigned g = 0; g < nq; ++g) scanned[g] = done[g];
      for (unsigned chunk = 0; chunk < chunks_per_node; ++chunk) {
        LaneMask mask = 0;
        for (unsigned g = 0; g < nq; ++g) {
          if (scanned[g]) continue;
          for (unsigned j = 0; j < gs; ++j) {
            const unsigned slot = chunk * gs + j;
            if (slot >= kpn) break;
            const unsigned lane = g * gs + j;
            mask |= gpusim::lane_bit(lane);
            addrs[lane] = image.key_addr(node[g], slot);
          }
        }
        if (mask == 0) break;
        w.gather<Key>(mask, std::span(addrs.data(), warp), lane_keys);
        w.compute(mask);

        for (unsigned g = 0; g < nq; ++g) {
          if (scanned[g]) continue;
          for (unsigned j = 0; j < gs; ++j) {
            const unsigned slot = chunk * gs + j;
            if (slot >= kpn) {
              scanned[g] = true;
              break;
            }
            const Key k = lane_keys[g * gs + j];
            if (k == target[g]) {
              found[g] = true;
              found_node[g] = node[g];
              found_slot[g] = slot;
              done[g] = true;
              scanned[g] = true;
              break;
            }
            if (k <= target[g]) {
              ++sep_leq[g];
            } else {
              scanned[g] = true;  // boundary: descend via sep_leq
              break;
            }
          }
          if (chunk + 1 == chunks_per_node) scanned[g] = true;
        }
      }

      // Index arithmetic only — no memory access for the child location.
      LaneMask mask = 0;
      for (unsigned g = 0; g < nq; ++g) {
        if (done[g]) continue;
        mask |= gpusim::lane_bit(g * gs);
        node[g] = node[g] * image.fanout + sep_leq[g] + 1;
      }
      if (mask != 0) w.compute(mask);
    }

    LaneMask hit_mask = 0;
    std::array<Value, 32> vals{};
    for (unsigned g = 0; g < nq; ++g) {
      if (found[g]) {
        hit_mask |= gpusim::lane_bit(g * gs);
        addrs[g * gs] = image.value_addr(found_node[g], found_slot[g]);
      }
    }
    if (hit_mask != 0) {
      w.gather<Value>(hit_mask, std::span(addrs.data(), warp), vals);
    }
    LaneMask out_mask = 0;
    std::array<Value, 32> out_vals{};
    for (unsigned g = 0; g < nq; ++g) {
      const unsigned lane = g * gs;
      out_mask |= gpusim::lane_bit(lane);
      addrs[lane] = out_values.element_addr(base + g);
      out_vals[lane] = found[g] ? vals[lane] : kNotFound;
    }
    w.scatter<Value>(out_mask, std::span(addrs.data(), warp),
                     std::span<const Value>(out_vals.data(), warp));
  };

  ImplicitSearchStats stats;
  stats.metrics = device.launch(num_warps, kernel);
  stats.queries = n;
  stats.warps = num_warps;
  return stats;
}

}  // namespace harmonia::implicit
