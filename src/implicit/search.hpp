// Device placement and batched lookup kernel for the implicit B+tree.
//
// There is no child region at all: the next node is pure index
// arithmetic, so traversal touches only the key array — the implicit
// organization's one advantage. Each query is served by a thread group,
// same SIMT structure as the Harmonia kernel, so the two are directly
// comparable on the simulator.
#pragma once

#include <cstdint>

#include "gpusim/device.hpp"
#include "implicit/implicit_tree.hpp"

namespace harmonia::implicit {

inline constexpr Value kNotFound = ~Value{0};

struct ImplicitDeviceImage {
  unsigned fanout = 0;
  unsigned height = 0;
  std::uint32_t num_nodes = 0;
  gpusim::DevPtr<Key> keys;
  gpusim::DevPtr<Value> values;

  unsigned keys_per_node() const { return fanout - 1; }
  std::uint64_t key_addr(std::uint32_t node, unsigned slot) const {
    return keys.element_addr(static_cast<std::uint64_t>(node) * keys_per_node() + slot);
  }
  std::uint64_t value_addr(std::uint32_t node, unsigned slot) const {
    return values.element_addr(static_cast<std::uint64_t>(node) * keys_per_node() + slot);
  }

  static ImplicitDeviceImage upload(gpusim::Device& device, const ImplicitTree& tree);
};

struct ImplicitSearchStats {
  gpusim::KernelMetrics metrics;
  std::uint64_t queries = 0;
  std::uint64_t warps = 0;
};

/// Batched lookups; group_size 0 selects the fanout-based group.
ImplicitSearchStats implicit_search_batch(gpusim::Device& device,
                                          const ImplicitDeviceImage& image,
                                          gpusim::DevPtr<Key> queries, std::uint64_t n,
                                          gpusim::DevPtr<Value> out_values,
                                          unsigned group_size = 0);

}  // namespace harmonia::implicit
