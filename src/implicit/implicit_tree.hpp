// Implicit B+tree (§2.2, citing Munro & Suwanda): the *other* B+tree
// organization the paper considers and rejects.
//
// The tree is complete and stores only keys, laid out breadth-first in
// one array; child locations come from pure index arithmetic
// (child(i, j) = i*fanout + j + 1 in node units), so no child references
// — and no prefix-sum region — exist at all. Keys live in *every* node
// (a k-ary search tree), assigned by an in-order traversal of the
// complete tree shape, so each node's keys partition its subtrees.
//
// The catch, and the reason the paper builds Harmonia on the *regular*
// B+tree instead: any insert or delete "has to restructure the entire
// tree" — updates are full rebuilds. ext_implicit_baseline measures both
// sides of that trade.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "btree/btree.hpp"

namespace harmonia::implicit {

using Key = std::uint64_t;
using Value = std::uint64_t;

/// Pad for slots past the last real key (compares greater than any key).
inline constexpr Key kPadKey = ~Key{0};

class ImplicitTree {
 public:
  /// Builds from sorted, distinct entries. Node capacity is fanout-1
  /// keys; the node count is the minimum complete shape covering them.
  static ImplicitTree build(std::span<const btree::Entry> entries, unsigned fanout);

  unsigned fanout() const { return fanout_; }
  unsigned keys_per_node() const { return fanout_ - 1; }
  std::uint32_t num_nodes() const { return num_nodes_; }
  std::uint64_t num_keys() const { return num_keys_; }
  unsigned height() const { return height_; }

  std::span<const Key> keys() const { return keys_; }
  std::span<const Value> values() const { return values_; }
  std::span<const Key> node_keys(std::uint32_t node) const;

  /// Index arithmetic: the j-th child of node i (may be >= num_nodes(),
  /// meaning "no such subtree").
  std::uint32_t child(std::uint32_t node, unsigned j) const {
    return node * fanout_ + j + 1;
  }

  /// Host-side reference search.
  std::optional<Value> search(Key key) const;

  /// In-order scan of [lo, hi] (up to limit entries; 0 = unlimited).
  std::vector<btree::Entry> range(Key lo, Key hi, std::size_t limit = 0) const;

  /// The paper's point: updates restructure the whole tree. Returns the
  /// rebuilt tree; `removed` keys are dropped, `upserts` inserted or
  /// overwritten. Cost is O(existing + changes) regardless of batch size.
  ImplicitTree rebuild_with(std::span<const btree::Entry> upserts,
                            std::span<const Key> removed) const;

  /// Structural invariants (search-tree ordering, pad placement).
  void validate() const;

 private:
  ImplicitTree() = default;

  void assign_inorder(std::uint32_t node, std::span<const btree::Entry> entries,
                      std::uint64_t& cursor);
  void inorder_collect(std::uint32_t node, std::vector<btree::Entry>& out) const;

  unsigned fanout_ = 0;
  unsigned height_ = 0;
  std::uint32_t num_nodes_ = 0;
  std::uint64_t num_keys_ = 0;
  std::vector<Key> keys_;     // num_nodes * (fanout-1), in-order assigned
  std::vector<Value> values_; // parallel to keys_
};

}  // namespace harmonia::implicit
