#include "btree/btree.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace harmonia::btree {

namespace {

/// Child to descend into = number of separators <= key.
std::size_t child_index(const Node* node, Key key) {
  const auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
  return static_cast<std::size_t>(it - node->keys.begin());
}

}  // namespace

BTree::BTree(unsigned fanout) : fanout_(fanout) {
  HARMONIA_CHECK_MSG(fanout >= 4, "fanout must be >= 4");
}

unsigned BTree::height() const {
  unsigned h = 0;
  for (const Node* n = root_.get(); n != nullptr; n = n->leaf ? nullptr : n->children[0].get()) {
    ++h;
  }
  return h;
}

const Node* BTree::descend_to_leaf(Key key) const {
  const Node* node = root_.get();
  while (node != nullptr && !node->leaf) {
    node = node->children[child_index(node, key)].get();
  }
  return node;
}

std::optional<Value> BTree::search(Key key) const {
  const Node* leaf = descend_to_leaf(key);
  if (leaf == nullptr) return std::nullopt;
  const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) return std::nullopt;
  return leaf->values[static_cast<std::size_t>(it - leaf->keys.begin())];
}

bool BTree::insert(Key key, Value value) {
  if (!root_) {
    root_ = std::make_unique<Node>();
    root_->leaf = true;
  }
  bool inserted = false;
  auto split = insert_rec(root_.get(), key, value, &inserted);
  if (split) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->keys.push_back(split->separator);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
  }
  if (inserted) ++size_;
  return inserted;
}

std::optional<BTree::SplitResult> BTree::insert_rec(Node* node, Key key, Value value,
                                                    bool* inserted) {
  if (node->leaf) {
    const auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
    const auto pos = static_cast<std::size_t>(it - node->keys.begin());
    if (it != node->keys.end() && *it == key) {
      node->values[pos] = value;  // overwrite existing
      *inserted = false;
      return std::nullopt;
    }
    node->keys.insert(it, key);
    node->values.insert(node->values.begin() + static_cast<std::ptrdiff_t>(pos), value);
    *inserted = true;
    if (node->keys.size() <= max_keys()) return std::nullopt;

    // Leaf split: right half moves to a new node; separator = right's min.
    const std::size_t mid = node->keys.size() / 2;
    auto right = std::make_unique<Node>();
    right->leaf = true;
    right->keys.assign(node->keys.begin() + static_cast<std::ptrdiff_t>(mid), node->keys.end());
    right->values.assign(node->values.begin() + static_cast<std::ptrdiff_t>(mid),
                         node->values.end());
    node->keys.resize(mid);
    node->values.resize(mid);
    right->next = node->next;
    node->next = right.get();
    return SplitResult{right->keys.front(), std::move(right)};
  }

  const std::size_t idx = child_index(node, key);
  auto child_split = insert_rec(node->children[idx].get(), key, value, inserted);
  if (!child_split) return std::nullopt;

  node->keys.insert(node->keys.begin() + static_cast<std::ptrdiff_t>(idx),
                    child_split->separator);
  node->children.insert(node->children.begin() + static_cast<std::ptrdiff_t>(idx) + 1,
                        std::move(child_split->right));
  if (node->keys.size() <= max_keys()) return std::nullopt;

  // Internal split: the middle separator moves up.
  const std::size_t mid = node->keys.size() / 2;
  const Key separator = node->keys[mid];
  auto right = std::make_unique<Node>();
  right->leaf = false;
  right->keys.assign(node->keys.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                     node->keys.end());
  right->children.reserve(node->children.size() - mid - 1);
  for (std::size_t i = mid + 1; i < node->children.size(); ++i) {
    right->children.push_back(std::move(node->children[i]));
  }
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  return SplitResult{separator, std::move(right)};
}

bool BTree::update(Key key, Value value) {
  Node* node = root_.get();
  while (node != nullptr && !node->leaf) {
    node = node->children[child_index(node, key)].get();
  }
  if (node == nullptr) return false;
  const auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  if (it == node->keys.end() || *it != key) return false;
  node->values[static_cast<std::size_t>(it - node->keys.begin())] = value;
  return true;
}

bool BTree::erase(Key key) {
  if (!root_) return false;
  bool erased = false;
  erase_rec(root_.get(), key, &erased);
  if (!erased) return false;
  --size_;
  // Shrink the root: an internal root with one child is replaced by it;
  // an empty leaf root means the tree is empty.
  if (!root_->leaf && root_->keys.empty()) {
    root_ = std::move(root_->children[0]);
  } else if (root_->leaf && root_->keys.empty()) {
    root_.reset();
  }
  return true;
}

bool BTree::erase_rec(Node* node, Key key, bool* erased) {
  if (node->leaf) {
    const auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
    if (it == node->keys.end() || *it != key) {
      *erased = false;
      return false;
    }
    const auto pos = static_cast<std::size_t>(it - node->keys.begin());
    node->keys.erase(it);
    node->values.erase(node->values.begin() + static_cast<std::ptrdiff_t>(pos));
    *erased = true;
    return node->keys.size() < min_keys();
  }

  const std::size_t idx = child_index(node, key);
  const bool child_underflow = erase_rec(node->children[idx].get(), key, erased);
  if (child_underflow) rebalance_child(node, idx);
  return node->keys.size() < min_keys();
}

void BTree::rebalance_child(Node* parent, std::size_t idx) {
  Node* child = parent->children[idx].get();
  Node* left = idx > 0 ? parent->children[idx - 1].get() : nullptr;
  Node* right = idx + 1 < parent->children.size() ? parent->children[idx + 1].get() : nullptr;

  if (left != nullptr && left->keys.size() > min_keys()) {
    // Borrow the left sibling's last entry/child.
    if (child->leaf) {
      child->keys.insert(child->keys.begin(), left->keys.back());
      child->values.insert(child->values.begin(), left->values.back());
      left->keys.pop_back();
      left->values.pop_back();
      parent->keys[idx - 1] = child->keys.front();
    } else {
      child->keys.insert(child->keys.begin(), parent->keys[idx - 1]);
      parent->keys[idx - 1] = left->keys.back();
      left->keys.pop_back();
      child->children.insert(child->children.begin(), std::move(left->children.back()));
      left->children.pop_back();
    }
    return;
  }

  if (right != nullptr && right->keys.size() > min_keys()) {
    // Borrow the right sibling's first entry/child.
    if (child->leaf) {
      child->keys.push_back(right->keys.front());
      child->values.push_back(right->values.front());
      right->keys.erase(right->keys.begin());
      right->values.erase(right->values.begin());
      parent->keys[idx] = right->keys.front();
    } else {
      child->keys.push_back(parent->keys[idx]);
      parent->keys[idx] = right->keys.front();
      right->keys.erase(right->keys.begin());
      child->children.push_back(std::move(right->children.front()));
      right->children.erase(right->children.begin());
    }
    return;
  }

  // Merge with a sibling; l_idx is the left node of the merged pair.
  const std::size_t l_idx = left != nullptr ? idx - 1 : idx;
  Node* l = parent->children[l_idx].get();
  Node* r = parent->children[l_idx + 1].get();
  if (l->leaf) {
    l->keys.insert(l->keys.end(), r->keys.begin(), r->keys.end());
    l->values.insert(l->values.end(), r->values.begin(), r->values.end());
    l->next = r->next;
  } else {
    l->keys.push_back(parent->keys[l_idx]);
    l->keys.insert(l->keys.end(), r->keys.begin(), r->keys.end());
    for (auto& c : r->children) l->children.push_back(std::move(c));
  }
  parent->keys.erase(parent->keys.begin() + static_cast<std::ptrdiff_t>(l_idx));
  parent->children.erase(parent->children.begin() + static_cast<std::ptrdiff_t>(l_idx) + 1);
}

std::vector<Entry> BTree::range(Key lo, Key hi, std::size_t limit) const {
  std::vector<Entry> out;
  if (lo > hi) return out;
  const Node* leaf = descend_to_leaf(lo);
  if (leaf == nullptr) return out;
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), lo);
  auto pos = static_cast<std::size_t>(it - leaf->keys.begin());
  while (leaf != nullptr) {
    for (; pos < leaf->keys.size(); ++pos) {
      if (leaf->keys[pos] > hi) return out;
      out.push_back({leaf->keys[pos], leaf->values[pos]});
      if (limit != 0 && out.size() >= limit) return out;
    }
    leaf = leaf->next;
    pos = 0;
  }
  return out;
}

void BTree::bulk_load(std::span<const Entry> entries, double fill_factor) {
  HARMONIA_CHECK(fill_factor > 0.0 && fill_factor <= 1.0);
  root_.reset();
  size_ = 0;
  if (entries.empty()) return;
  for (std::size_t i = 1; i < entries.size(); ++i) {
    HARMONIA_CHECK_MSG(entries[i - 1].key < entries[i].key,
                       "bulk_load input must be sorted and distinct");
  }

  const auto target_keys = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::lround(static_cast<double>(max_keys()) * fill_factor)),
      std::max<std::size_t>(1, min_keys()), max_keys());

  // Build the leaf level.
  struct Built {
    std::unique_ptr<Node> node;
    Key min_key;
  };
  std::vector<Built> level;
  {
    std::size_t i = 0;
    Node* prev = nullptr;
    while (i < entries.size()) {
      std::size_t take = std::min(target_keys, entries.size() - i);
      // Avoid a final underfull leaf: absorb a short tail into this node
      // if it fits, otherwise split the remainder evenly.
      const std::size_t rest = entries.size() - i - take;
      if (rest > 0 && rest < min_keys()) {
        if (take + rest <= max_keys()) {
          take += rest;
        } else {
          take = (take + rest + 1) / 2;
        }
      }
      auto node = std::make_unique<Node>();
      node->leaf = true;
      for (std::size_t j = 0; j < take; ++j) {
        node->keys.push_back(entries[i + j].key);
        node->values.push_back(entries[i + j].value);
      }
      if (prev != nullptr) prev->next = node.get();
      prev = node.get();
      level.push_back({std::move(node), entries[i].key});
      i += take;
    }
  }
  size_ = entries.size();

  // Build internal levels until one node remains.
  const std::size_t target_children = std::clamp<std::size_t>(
      target_keys + 1, std::max<std::size_t>(2, min_keys() + 1), max_keys() + 1);
  while (level.size() > 1) {
    std::vector<Built> parents;
    std::size_t i = 0;
    while (i < level.size()) {
      std::size_t take = std::min(target_children, level.size() - i);
      const std::size_t rest = level.size() - i - take;
      const std::size_t min_children = min_keys() + 1;
      if (rest > 0 && rest < min_children) {
        if (take + rest <= max_keys() + 1) {
          take += rest;
        } else {
          take = (take + rest + 1) / 2;
        }
      }
      auto node = std::make_unique<Node>();
      node->leaf = false;
      const Key min_key = level[i].min_key;
      for (std::size_t j = 0; j < take; ++j) {
        if (j > 0) node->keys.push_back(level[i + j].min_key);
        node->children.push_back(std::move(level[i + j].node));
      }
      parents.push_back({std::move(node), min_key});
      i += take;
    }
    level = std::move(parents);
  }
  root_ = std::move(level.front().node);
}

std::vector<std::vector<const Node*>> BTree::levels() const {
  std::vector<std::vector<const Node*>> out;
  if (!root_) return out;
  std::vector<const Node*> current{root_.get()};
  while (!current.empty()) {
    out.push_back(current);
    std::vector<const Node*> next;
    for (const Node* n : current) {
      if (n->leaf) continue;
      for (const auto& c : n->children) next.push_back(c.get());
    }
    current = std::move(next);
  }
  return out;
}

const Node* BTree::first_leaf() const {
  const Node* node = root_.get();
  while (node != nullptr && !node->leaf) node = node->children[0].get();
  return node;
}

void BTree::validate() const {
  if (!root_) {
    HARMONIA_CHECK(size_ == 0);
    return;
  }
  const unsigned leaf_depth = height();
  validate_rec(root_.get(), 1, leaf_depth, std::nullopt, std::nullopt);

  // Leaf chain covers exactly size_ keys, in strictly ascending order.
  std::uint64_t seen = 0;
  std::optional<Key> prev;
  for (const Node* leaf = first_leaf(); leaf != nullptr; leaf = leaf->next) {
    for (Key k : leaf->keys) {
      if (prev) HARMONIA_CHECK_MSG(*prev < k, "leaf chain out of order");
      prev = k;
      ++seen;
    }
  }
  HARMONIA_CHECK_MSG(seen == size_, "leaf chain covers " << seen << " keys, size() = " << size_);
}

void BTree::validate_rec(const Node* node, unsigned depth, unsigned leaf_depth,
                         std::optional<Key> lo, std::optional<Key> hi) const {
  HARMONIA_CHECK(std::is_sorted(node->keys.begin(), node->keys.end()));
  HARMONIA_CHECK(std::adjacent_find(node->keys.begin(), node->keys.end()) == node->keys.end());
  for (Key k : node->keys) {
    if (lo) HARMONIA_CHECK_MSG(k >= *lo, "key below subtree lower bound");
    if (hi) HARMONIA_CHECK_MSG(k < *hi, "key above subtree upper bound");
  }
  if (node != root_.get()) {
    HARMONIA_CHECK_MSG(node->keys.size() >= min_keys(), "underfull non-root node");
  }
  HARMONIA_CHECK_MSG(node->keys.size() <= max_keys(), "overfull node");

  if (node->leaf) {
    HARMONIA_CHECK_MSG(depth == leaf_depth, "leaves at different depths");
    HARMONIA_CHECK(node->values.size() == node->keys.size());
    HARMONIA_CHECK(node->children.empty());
    return;
  }
  HARMONIA_CHECK(node->values.empty());
  HARMONIA_CHECK_MSG(node->children.size() == node->keys.size() + 1,
                     "internal node children != keys + 1");
  for (std::size_t i = 0; i < node->children.size(); ++i) {
    const std::optional<Key> child_lo = i == 0 ? lo : std::optional<Key>(node->keys[i - 1]);
    const std::optional<Key> child_hi =
        i == node->keys.size() ? hi : std::optional<Key>(node->keys[i]);
    validate_rec(node->children[i].get(), depth + 1, leaf_depth, child_lo, child_hi);
  }
}

Value value_for_key(Key key) { return SplitMix64(key).next(); }

BTree make_tree(std::span<const Key> sorted_keys, unsigned fanout, double fill_factor) {
  BTree tree(fanout);
  std::vector<Entry> entries;
  entries.reserve(sorted_keys.size());
  for (Key k : sorted_keys) entries.push_back({k, value_for_key(k)});
  tree.bulk_load(entries, fill_factor);
  return tree;
}

}  // namespace harmonia::btree
