// Regular (pointer-based) B+tree on the host.
//
// This is the "traditional regular B+tree" of §2.2/Figure 4(a): every node
// holds keys plus child references; all values live in the leaves, which
// are linked for range scans. It serves three roles in the reproduction:
// the structure Harmonia and HB+Tree serialize their device images from,
// the correctness oracle in tests, and the CPU side of batch updates.
//
// Separator convention: for an internal node, keys[i] is <= every key in
// children[i+1] and > every key in children[i]; a lookup descends into
// children[upper_bound(keys, target)] — i.e. the child index equals the
// number of separators <= target (Equation 1 uses the same child index).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

namespace harmonia::btree {

using Key = std::uint64_t;
using Value = std::uint64_t;

struct Node {
  bool leaf = true;
  std::vector<Key> keys;
  std::vector<std::unique_ptr<Node>> children;  // internal nodes only
  std::vector<Value> values;                    // leaf nodes only
  Node* next = nullptr;                         // leaf chain

  std::size_t key_count() const { return keys.size(); }
};

/// A key/value pair returned by range scans.
struct Entry {
  Key key;
  Value value;
};

class BTree {
 public:
  /// `fanout` is the max child count of a node (so max keys = fanout-1).
  explicit BTree(unsigned fanout);

  BTree(BTree&&) noexcept = default;
  BTree& operator=(BTree&&) noexcept = default;

  unsigned fanout() const { return fanout_; }
  std::uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  unsigned height() const;  // number of levels; empty tree has height 0

  /// Replaces the contents with `entries` (sorted by key, distinct), packing
  /// leaves to `fill_factor` of capacity. Random-insert B+trees average
  /// ~69% full (ln 2), which is the default.
  void bulk_load(std::span<const Entry> entries, double fill_factor = 0.69);

  /// Point lookup.
  std::optional<Value> search(Key key) const;

  /// Inserts a new key or overwrites the value of an existing one.
  /// Returns true if the key was new.
  bool insert(Key key, Value value);

  /// Updates an existing key's value; returns false if absent.
  bool update(Key key, Value value);

  /// Removes a key; returns false if absent.
  bool erase(Key key);

  /// All entries with lo <= key <= hi, in order, up to `limit` (0 = all).
  std::vector<Entry> range(Key lo, Key hi, std::size_t limit = 0) const;

  /// Invariant checker (tests): throws ContractViolation on corruption.
  void validate() const;

  /// Breadth-first node levels, root first. Level vectors order nodes
  /// left-to-right — exactly the order device serializers lay keys out in.
  std::vector<std::vector<const Node*>> levels() const;

  const Node* root() const { return root_.get(); }

  /// Leftmost leaf (head of the leaf chain).
  const Node* first_leaf() const;

 private:
  std::size_t max_keys() const { return fanout_ - 1; }
  std::size_t min_keys() const { return max_keys() / 2; }

  const Node* descend_to_leaf(Key key) const;

  struct SplitResult {
    Key separator;
    std::unique_ptr<Node> right;
  };
  /// Inserts into the subtree; returns a split if `node` overflowed.
  std::optional<SplitResult> insert_rec(Node* node, Key key, Value value, bool* inserted);
  /// Erases from the subtree; returns true if `node` underflowed.
  bool erase_rec(Node* node, Key key, bool* erased);
  /// Fixes the underflowed child `idx` of `parent` by borrow or merge.
  void rebalance_child(Node* parent, std::size_t idx);

  void validate_rec(const Node* node, unsigned depth, unsigned leaf_depth,
                    std::optional<Key> lo, std::optional<Key> hi) const;

  unsigned fanout_;
  std::unique_ptr<Node> root_;
  std::uint64_t size_ = 0;
};

/// Convenience: builds a bulk-loaded tree with values = hash of key.
BTree make_tree(std::span<const Key> sorted_keys, unsigned fanout,
                double fill_factor = 0.69);

/// The value every convenience builder associates with `key` (tests use it
/// to verify lookups end-to-end without carrying a map around).
Value value_for_key(Key key);

}  // namespace harmonia::btree
