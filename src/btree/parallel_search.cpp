#include "btree/parallel_search.hpp"

#include <thread>

#include "common/expect.hpp"
#include "common/timer.hpp"

namespace harmonia::btree {

CpuSearchResult search_batch_cpu(const BTree& tree, std::span<const Key> batch,
                                 unsigned threads) {
  HARMONIA_CHECK(threads >= 1);
  CpuSearchResult result;
  result.values.resize(batch.size());
  WallTimer timer;

  auto worker = [&](unsigned t) {
    for (std::size_t i = t; i < batch.size(); i += threads) {
      const auto v = tree.search(batch[i]);
      result.values[i] = v ? *v : kNotFound;
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& th : pool) th.join();
  }
  result.seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace harmonia::btree
