// CPU batch search over the regular B+tree — the host-side baseline the
// paper's introduction motivates against ("GPUs provide a potential
// opportunity to accelerate query throughput").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "btree/btree.hpp"

namespace harmonia::btree {

inline constexpr Value kNotFound = ~Value{0};

struct CpuSearchResult {
  std::vector<Value> values;  // kNotFound for misses
  double seconds = 0.0;
  double throughput() const {
    return seconds > 0.0 ? static_cast<double>(values.size()) / seconds : 0.0;
  }
};

/// Searches the batch with `threads` workers (striped). Wall-clock timed:
/// this is real host execution, not simulation.
CpuSearchResult search_batch_cpu(const BTree& tree, std::span<const Key> batch,
                                 unsigned threads = 1);

}  // namespace harmonia::btree
