#include "shard/replica_group.hpp"

#include <limits>

#include "common/expect.hpp"

namespace harmonia::shard {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

ReplicaGroup::ReplicaGroup(unsigned k)
    : healthy_(k, 1), lost_epoch_(k, 0) {
  HARMONIA_CHECK_MSG(k >= 1, "a replica group needs at least one member");
}

unsigned ReplicaGroup::healthy_count() const {
  unsigned n = 0;
  for (const char h : healthy_) n += h ? 1u : 0u;
  return n;
}

bool ReplicaGroup::is_healthy(unsigned r) const {
  HARMONIA_CHECK(r < size());
  return healthy_[r] != 0;
}

std::uint64_t ReplicaGroup::lost_epoch(unsigned r) const {
  HARMONIA_CHECK(r < size());
  return lost_epoch_[r];
}

void ReplicaGroup::lose(unsigned r, std::uint64_t epoch) {
  HARMONIA_CHECK(r < size());
  HARMONIA_CHECK_MSG(healthy_[r] != 0, "replica " << r << " is already lost");
  healthy_[r] = 0;
  lost_epoch_[r] = epoch;
}

void ReplicaGroup::rejoin(unsigned r) {
  HARMONIA_CHECK(r < size());
  HARMONIA_CHECK_MSG(healthy_[r] == 0, "replica " << r << " is not lost");
  healthy_[r] = 1;
  lost_epoch_[r] = 0;
}

unsigned ReplicaGroup::pick(std::span<const double> free) {
  const unsigned k = size();
  HARMONIA_CHECK(free.size() == k);
  unsigned best = k;
  double best_free = kInf;
  // Rotation order from the cursor; strict `<` keeps the first-found
  // member of a tie, so equally-free replicas alternate as the cursor
  // advances past each pick.
  for (unsigned i = 0; i < k; ++i) {
    const unsigned r = (cursor_ + i) % k;
    if (!healthy_[r]) continue;
    if (free[r] < best_free) {
      best = r;
      best_free = free[r];
    }
  }
  HARMONIA_CHECK_MSG(best < k, "dispatch against a group with no healthy "
                               "replica (the caller must fence first)");
  cursor_ = (best + 1) % k;
  return best;
}

double ReplicaGroup::min_free(std::span<const double> free) const {
  HARMONIA_CHECK(free.size() == size());
  double out = kInf;
  for (unsigned r = 0; r < size(); ++r)
    if (healthy_[r] && free[r] < out) out = free[r];
  return out;
}

double ReplicaGroup::max_free(std::span<const double> free) const {
  HARMONIA_CHECK(free.size() == size());
  double out = 0.0;
  for (unsigned r = 0; r < size(); ++r)
    if (healthy_[r] && free[r] > out) out = free[r];
  return out;
}

}  // namespace harmonia::shard
