#include "shard/sharded_index.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "common/expect.hpp"

namespace harmonia::shard {

ShardedIndex::ShardedIndex(std::span<const btree::Entry> entries, ShardPlan plan,
                           const ShardedOptions& options)
    : plan_(std::move(plan)), options_(options), shards_(plan_.num_shards()) {
  HARMONIA_CHECK(std::is_sorted(
      entries.begin(), entries.end(),
      [](const btree::Entry& a, const btree::Entry& b) { return a.key < b.key; }));
  // Entries are sorted, so each shard's slice is one contiguous subspan.
  std::size_t begin = 0;
  for (unsigned s = 0; s < num_shards(); ++s) {
    std::size_t end = begin;
    while (end < entries.size() && plan_.shard_of(entries[end].key) == s) ++end;
    if (end > begin) build_shard(s, entries.subspan(begin, end - begin));
    begin = end;
  }
}

void ShardedIndex::build_shard(unsigned s, std::span<const btree::Entry> entries) {
  auto spec = options_.device;
  spec.global_mem_bytes = options_.device_global_bytes;
  spec.name = options_.device.name + " shard" + std::to_string(s);
  shards_[s].device = std::make_unique<gpusim::Device>(spec);
  shards_[s].index = std::make_unique<HarmoniaIndex>(
      *shards_[s].device,
      [&] {
        btree::BTree builder(options_.index.fanout);
        builder.bulk_load(entries, options_.index.fill_factor);
        return HarmoniaTree::from_btree(builder);
      }(),
      options_.index);
}

void ShardedIndex::install_shard(unsigned s, HarmoniaTree tree) {
  HARMONIA_CHECK(s < shards_.size());
  // shard_of is monotone over contiguous planned ranges, so counting the
  // entries inside [lo(s), hi(s)] catches any out-of-range key.
  HARMONIA_CHECK_MSG(
      tree.range(plan_.lo(s), plan_.hi(s)).size() == tree.num_keys(),
      "recovered tree holds keys outside shard " << s << "'s range");
  auto spec = options_.device;
  spec.global_mem_bytes = options_.device_global_bytes;
  spec.name = options_.device.name + " shard" + std::to_string(s);
  shards_[s].device = std::make_unique<gpusim::Device>(spec);
  shards_[s].index = std::make_unique<HarmoniaIndex>(*shards_[s].device,
                                                     std::move(tree),
                                                     options_.index);
}

void ShardedIndex::set_plan(ShardPlan plan) {
  HARMONIA_CHECK_MSG(plan.num_shards() == plan_.num_shards(),
                     "live resharding moves boundaries between existing "
                     "shards; it cannot change the shard count ("
                         << plan_.num_shards() << " -> " << plan.num_shards()
                         << ")");
  for (unsigned s = 0; s < num_shards(); ++s) {
    const HarmoniaIndex* idx = shards_[s].index.get();
    if (idx == nullptr) continue;
    HARMONIA_CHECK_MSG(
        idx->tree().range(plan.lo(s), plan.hi(s)).size() ==
            idx->tree().num_keys(),
        "new plan leaves shard " << s << " holding keys outside its range "
        "(the migration must re-image both sides before the flip)");
  }
  plan_ = std::move(plan);
}

HarmoniaIndex* ShardedIndex::shard(unsigned s) {
  HARMONIA_CHECK(s < shards_.size());
  return shards_[s].index.get();
}

const HarmoniaIndex* ShardedIndex::shard(unsigned s) const {
  HARMONIA_CHECK(s < shards_.size());
  return shards_[s].index.get();
}

std::uint64_t ShardedIndex::shard_key_count(unsigned s) const {
  const HarmoniaIndex* idx = shard(s);
  return idx ? idx->tree().num_keys() : 0;
}

std::uint64_t ShardedIndex::num_keys() const {
  std::uint64_t n = 0;
  for (unsigned s = 0; s < num_shards(); ++s) n += shard_key_count(s);
  return n;
}

void ShardedIndex::set_observer(const obs::Observer& obs) {
  obs_ = obs;
  if (obs.metrics == nullptr) return;
  obs::MetricsRegistry& m = *obs.metrics;
  routed_.assign(num_shards(), nullptr);
  for (unsigned s = 0; s < num_shards(); ++s) {
    routed_[s] = &m.counter("shard_routed_queries_total{shard=\"" +
                            std::to_string(s) + "\"}");
  }
  search_batches_ = &m.counter("shard_search_batches_total");
  straddling_ = &m.counter("shard_straddling_ranges_total");
  update_ops_ = &m.counter("shard_update_ops_total");
  hedges_issued_ = &m.counter("fault_hedges_issued_total");
  hedges_won_ = &m.counter("fault_hedges_won_total");
}

ShardedIndex::SearchResult ShardedIndex::search(std::span<const Key> batch) {
  return search(batch, nullptr, 0.0);
}

ShardedIndex::SearchResult ShardedIndex::search(std::span<const Key> batch,
                                                fault::FaultInjector* injector,
                                                double now) {
  HARMONIA_CHECK(!batch.empty());
  const bool faulty = injector != nullptr && injector->active();
  SearchResult result;
  result.values.assign(batch.size(), kNotFound);
  result.per_shard.assign(num_shards(), 0);

  // Scatter by partition boundary, remembering each query's arrival slot.
  std::vector<std::vector<Key>> keys(num_shards());
  std::vector<std::vector<std::size_t>> slots(num_shards());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const unsigned s = plan_.shard_of(batch[i]);
    keys[s].push_back(batch[i]);
    slots[s].push_back(i);
    ++result.per_shard[s];
  }
  if (obs_.metrics != nullptr) {
    search_batches_->inc();
    for (unsigned s = 0; s < num_shards(); ++s)
      if (result.per_shard[s] > 0) routed_[s]->inc(result.per_shard[s]);
  }

  // Per-shard times, kept apart so the hedging pass below can compare
  // shards against each other before the final aggregation.
  std::vector<double> shard_seconds(num_shards(), 0.0);
  std::vector<double> clean_seconds(num_shards(), 0.0);
  std::vector<bool> ran(num_shards(), false);
  for (unsigned s = 0; s < num_shards(); ++s) {
    if (keys[s].empty()) continue;
    // A deviceless shard holds no keys: its queries stay kNotFound.
    if (!shards_[s].index) continue;
    const auto piped = pipelined_search(*shards_[s].index, keys[s], options_.link,
                                        options_.pipeline);
    for (std::size_t j = 0; j < slots[s].size(); ++j)
      result.values[slots[s][j]] = piped.values[j];
    ran[s] = true;
    clean_seconds[s] = piped.total_seconds;
    shard_seconds[s] = piped.total_seconds;
    if (faulty) {
      const double factor = injector->transfer_factor(s, now);
      shard_seconds[s] +=
          (factor - 1.0) * (piped.upload_seconds + piped.download_seconds);
    }
  }

  // Hedged re-dispatch: a shard still running at `multiplier`x the median
  // shard time is treated as a straggler — its sub-batch is re-issued at
  // that detection point on an unimpaired link, and whichever copy
  // finishes first answers. (Results are identical either way; only the
  // timeline changes, so this stays deterministic.)
  if (faulty && injector->mitigation().hedge.enabled) {
    std::vector<double> active;
    for (unsigned s = 0; s < num_shards(); ++s)
      if (ran[s]) active.push_back(shard_seconds[s]);
    if (active.size() >= 2) {
      std::sort(active.begin(), active.end());
      const double median = active[(active.size() - 1) / 2];
      const double cutoff = injector->mitigation().hedge.multiplier * median;
      for (unsigned s = 0; s < num_shards(); ++s) {
        if (!ran[s] || shard_seconds[s] <= cutoff) continue;
        ++result.hedges_issued;
        ++injector->report().hedges_issued;
        if (hedges_issued_ != nullptr) hedges_issued_->inc();
        if (obs_.trace != nullptr) {
          obs_.trace->annotate(now, s,
                               "hedged straggler sub-batch (" +
                                   std::to_string(keys[s].size()) + " queries)");
        }
        const double hedged = cutoff + clean_seconds[s];
        if (hedged < shard_seconds[s]) {
          shard_seconds[s] = hedged;
          ++result.hedges_won;
          ++injector->report().hedges_won;
          if (hedges_won_ != nullptr) hedges_won_->inc();
        }
      }
    }
  }

  for (unsigned s = 0; s < num_shards(); ++s) {
    if (!ran[s]) continue;
    result.device_seconds += shard_seconds[s];
    if (shard_seconds[s] > result.total_seconds) {
      result.total_seconds = shard_seconds[s];
      result.bottleneck_shard = s;
    }
  }
  return result;
}

ShardedIndex::RangeResult ShardedIndex::range(std::span<const Key> los,
                                              std::span<const Key> his,
                                              unsigned max_results) {
  HARMONIA_CHECK(los.size() == his.size());
  HARMONIA_CHECK(!los.empty());
  HARMONIA_CHECK(max_results > 0);

  RangeResult result;
  result.values.resize(los.size());

  // Fan out: each query contributes one clamped sub-query to every shard
  // its span touches. Sub-queries are gathered per shard so each device
  // serves one batch.
  std::vector<std::vector<Key>> sub_lo(num_shards()), sub_hi(num_shards());
  std::vector<std::vector<std::size_t>> sub_query(num_shards());
  for (std::size_t i = 0; i < los.size(); ++i) {
    HARMONIA_CHECK(los[i] <= his[i]);
    const unsigned s0 = plan_.shard_of(los[i]);
    const unsigned s1 = plan_.shard_of(his[i]);
    if (s1 > s0) {
      ++result.straddling;
      if (straddling_ != nullptr) straddling_->inc();
    }
    for (unsigned s = s0; s <= s1; ++s) {
      if (!shards_[s].index) continue;
      sub_lo[s].push_back(std::max(los[i], plan_.lo(s)));
      sub_hi[s].push_back(std::min(his[i], plan_.hi(s)));
      sub_query[s].push_back(i);
    }
  }

  // Shards in ascending order: a query's per-shard pieces append in key
  // order, so the merged list is ascending without a sort.
  for (unsigned s = 0; s < num_shards(); ++s) {
    if (sub_lo[s].empty()) continue;
    const auto r = shards_[s].index->range_device(sub_lo[s], sub_hi[s], max_results);
    // Same service model as the online scheduler: bounds up, kernel,
    // values down, on this shard's own link.
    const double service =
        options_.link.seconds(2 * sub_lo[s].size() * sizeof(Key)) +
        r.kernel_seconds + options_.link.seconds(r.total_results * sizeof(Value));
    result.total_seconds = std::max(result.total_seconds, service);
    for (std::size_t j = 0; j < sub_query[s].size(); ++j) {
      auto& out = result.values[sub_query[s][j]];
      for (Value v : r.values[j]) {
        if (out.size() >= max_results) break;
        out.push_back(v);
        ++result.total_results;
      }
    }
  }
  return result;
}

unsigned ShardedIndex::scan_end_shard(Key lo, std::uint32_t n) const {
  const std::uint32_t want = std::max<std::uint32_t>(n, 1);
  unsigned s = plan_.shard_of(lo);
  std::uint64_t have = 0;
  if (shards_[s].index != nullptr) {
    have = shards_[s]
               .index
               ->range_host(std::max(lo, plan_.lo(s)), plan_.hi(s), want)
               .size();
  }
  while (have < want && s + 1 < num_shards()) {
    ++s;
    have += shard_key_count(s);
  }
  return s;
}

ShardedIndex::RangeResult ShardedIndex::scan(std::span<const Key> los,
                                             std::span<const std::uint32_t> ns) {
  HARMONIA_CHECK(los.size() == ns.size());
  HARMONIA_CHECK(!los.empty());

  RangeResult result;
  result.values.resize(los.size());

  // Fan out: each scan contributes one clamped sub-scan to every shard
  // its coverage reaches. Each sub-scan asks for the full n — earlier
  // shards may hold fewer tail keys than counted on — and the merge
  // truncates.
  std::vector<std::vector<Key>> sub_lo(num_shards());
  std::vector<std::vector<std::uint32_t>> sub_n(num_shards());
  std::vector<std::vector<std::size_t>> sub_query(num_shards());
  for (std::size_t i = 0; i < los.size(); ++i) {
    const std::uint32_t n = std::max<std::uint32_t>(ns[i], 1);
    const unsigned s0 = plan_.shard_of(los[i]);
    const unsigned s1 = scan_end_shard(los[i], n);
    if (s1 > s0) {
      ++result.straddling;
      if (straddling_ != nullptr) straddling_->inc();
    }
    for (unsigned s = s0; s <= s1; ++s) {
      if (!shards_[s].index) continue;
      sub_lo[s].push_back(std::max(los[i], plan_.lo(s)));
      sub_n[s].push_back(n);
      sub_query[s].push_back(i);
    }
  }

  // Shards in ascending order: a scan's per-shard pieces append in key
  // order, so the merged list is ascending without a sort.
  for (unsigned s = 0; s < num_shards(); ++s) {
    if (sub_lo[s].empty()) continue;
    const auto r = shards_[s].index->scan_device(sub_lo[s], sub_n[s]);
    const double service =
        options_.link.seconds(sub_lo[s].size() *
                              (sizeof(Key) + sizeof(std::uint32_t))) +
        r.kernel_seconds + options_.link.seconds(r.total_results * sizeof(Value));
    result.total_seconds = std::max(result.total_seconds, service);
    for (std::size_t j = 0; j < sub_query[s].size(); ++j) {
      const std::size_t i = sub_query[s][j];
      auto& out = result.values[i];
      for (Value v : r.values[j]) {
        if (out.size() >= std::max<std::uint32_t>(ns[i], 1)) break;
        out.push_back(v);
        ++result.total_results;
      }
    }
  }
  return result;
}

std::vector<btree::Entry> ShardedIndex::scan_host(Key lo, std::size_t n) const {
  std::vector<btree::Entry> out;
  for (unsigned s = plan_.shard_of(lo); s < num_shards() && out.size() < n;
       ++s) {
    if (!shards_[s].index) continue;
    const auto part = shards_[s].index->range_host(
        std::max(lo, plan_.lo(s)), plan_.hi(s), n - out.size());
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

UpdateStats ShardedIndex::update_batch(std::span<const queries::UpdateOp> ops,
                                       unsigned threads) {
  // Scatter preserving arrival order within each shard: ops commute across
  // shards (disjoint key ranges) but not within one.
  std::vector<std::vector<queries::UpdateOp>> per_shard(num_shards());
  for (const auto& op : ops) per_shard[plan_.shard_of(op.key)].push_back(op);
  if (update_ops_ != nullptr) update_ops_->inc(ops.size());

  UpdateStats agg;
  last_resync_seconds_ = 0.0;
  for (unsigned s = 0; s < num_shards(); ++s) {
    if (per_shard[s].empty()) continue;
    if (!shards_[s].index) {
      apply_to_empty_shard(s, per_shard[s], agg);
      continue;
    }
    const UpdateStats st = shards_[s].index->update_batch(per_shard[s], threads);
    agg.updates += st.updates;
    agg.inserts += st.inserts;
    agg.deletes += st.deletes;
    agg.failed += st.failed;
    agg.fine_path_ops += st.fine_path_ops;
    agg.coarse_path_ops += st.coarse_path_ops;
    agg.coarse_retries += st.coarse_retries;
    agg.aux_nodes += st.aux_nodes;
    agg.moved_slots += st.moved_slots;
    agg.rebuilt = agg.rebuilt || st.rebuilt;
    // One host CPU applies shard after shard; wall apply time sums.
    agg.apply_seconds += st.apply_seconds;
    agg.rebuild_seconds += st.rebuild_seconds;
    // Each device resyncs over its own link; resyncs overlap. Charge the
    // modeled PCIe cost, not measured wall time — the virtual clock must
    // stay deterministic for a fixed op stream.
    last_resync_seconds_ =
        std::max(last_resync_seconds_,
                 image_resync_seconds(shards_[s].index->tree(), options_.link));
  }
  return agg;
}

void ShardedIndex::apply_to_empty_shard(unsigned s,
                                        std::span<const queries::UpdateOp> ops,
                                        UpdateStats& agg) {
  // No tree to lock: replay the sub-batch on a host map with the
  // BatchUpdater's op semantics, then bulk-build the shard from the
  // survivors.
  std::map<Key, Value> m;
  for (const auto& op : ops) {
    switch (op.kind) {
      case queries::OpKind::kUpdate:
        ++agg.updates;
        if (auto it = m.find(op.key); it != m.end())
          it->second = op.value;
        else
          ++agg.failed;
        break;
      case queries::OpKind::kInsert:
        ++agg.inserts;
        m[op.key] = op.value;
        break;
      case queries::OpKind::kDelete:
        ++agg.deletes;
        if (m.erase(op.key) == 0) ++agg.failed;
        break;
    }
  }
  if (m.empty()) return;
  std::vector<btree::Entry> entries;
  entries.reserve(m.size());
  for (const auto& [k, v] : m) entries.push_back({k, v});
  build_shard(s, entries);
  last_resync_seconds_ =
      std::max(last_resync_seconds_,
               image_resync_seconds(shards_[s].index->tree(), options_.link));
}

std::optional<Value> ShardedIndex::search_host(Key key) const {
  const HarmoniaIndex* idx = shard(plan_.shard_of(key));
  return idx ? idx->search_host(key) : std::nullopt;
}

std::vector<btree::Entry> ShardedIndex::range_host(Key lo, Key hi,
                                                   std::size_t limit) const {
  std::vector<btree::Entry> out;
  const unsigned s1 = plan_.shard_of(hi);
  for (unsigned s = plan_.shard_of(lo); s <= s1; ++s) {
    const HarmoniaIndex* idx = shard(s);
    if (!idx) continue;
    const std::size_t want = limit == 0 ? 0 : limit - out.size();
    auto part = idx->range_host(std::max(lo, plan_.lo(s)),
                                std::min(hi, plan_.hi(s)), want);
    out.insert(out.end(), part.begin(), part.end());
    if (limit != 0 && out.size() >= limit) break;
  }
  return out;
}

}  // namespace harmonia::shard
