#include "shard/sharded_server.hpp"

#include <algorithm>
#include <limits>

#include "common/expect.hpp"

namespace harmonia::shard {

using serve::BatchScheduler;
using serve::Request;
using serve::RequestKind;
using serve::RequestSource;
using serve::Response;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

ShardedServer::ShardedServer(ShardedIndex& index, const ShardedServerConfig& config)
    : index_(index),
      config_(config),
      sched_(index.num_shards()),
      device_free_(index.num_shards(), 0.0) {
  for (unsigned s = 0; s < index_.num_shards(); ++s) {
    HARMONIA_CHECK_MSG(index_.shard(s) != nullptr,
                       "shard " << s << " holds no keys — plan the partition "
                                << "from the served keys (sample_balanced)");
    sched_[s] = std::make_unique<BatchScheduler>(*index_.shard(s), config_.link,
                                                 config_.batch);
  }
}

std::size_t ShardedServer::total_depth() const {
  std::size_t n = 0;
  for (const auto& s : sched_) n += s->depth();
  return n;
}

void ShardedServer::drop(const Request& r, RequestSource& source,
                         ShardedServerReport& report) {
  ++report.dropped;
  Response resp;
  resp.id = r.id;
  resp.kind = r.kind;
  resp.dropped = true;
  resp.epoch = epochs_;
  resp.arrival = resp.dispatch = resp.completion = r.arrival;
  resp.value = kNotFound;
  report.makespan = std::max(report.makespan, resp.completion);
  source.on_complete(resp);
  report.responses.push_back(std::move(resp));
}

void ShardedServer::admit_query(const Request& r, RequestSource& source,
                                ShardedServerReport& report) {
  report.queue_depth.add(static_cast<double>(total_depth()));

  if (r.kind == RequestKind::kPoint) {
    const unsigned s = index_.plan().shard_of(r.key);
    if (sched_[s]->admit(r))
      ++report.admitted;
    else
      drop(r, source, report);
    return;
  }

  HARMONIA_CHECK(r.kind == RequestKind::kRange);
  HARMONIA_CHECK(r.key <= r.hi);
  const unsigned s0 = index_.plan().shard_of(r.key);
  const unsigned s1 = index_.plan().shard_of(r.hi);
  if (s0 == s1) {
    // Whole span inside one shard: an ordinary range request.
    if (sched_[s0]->admit(r))
      ++report.admitted;
    else
      drop(r, source, report);
    return;
  }

  // Straddling: split into per-shard sub-requests with clamped bounds,
  // admitted all-or-nothing so a partially-enqueued fan-out never exists.
  for (unsigned s = s0; s <= s1; ++s) {
    if (sched_[s]->free_slots(RequestKind::kRange) == 0) {
      drop(r, source, report);
      return;
    }
  }
  ++report.admitted;
  ++report.split_ranges;
  PendingMerge merge;
  merge.parts_expected = s1 - s0 + 1;
  merge.original = r;
  merges_.emplace(r.id, std::move(merge));
  for (unsigned s = s0; s <= s1; ++s) {
    Request sub = r;
    sub.id = next_sub_id_++;
    sub.key = std::max(r.key, index_.plan().lo(s));
    sub.hi = std::min(r.hi, index_.plan().hi(s));
    parent_of_.emplace(sub.id, r.id);
    const bool ok = sched_[s]->admit(sub);
    HARMONIA_CHECK(ok);  // free_slots was probed above
  }
}

void ShardedServer::deliver(Response resp, RequestSource& source,
                            ShardedServerReport& report) {
  ++report.completed;
  report.latency.add(resp.latency());
  report.queue_delay.add(resp.queue_delay());
  report.makespan = std::max(report.makespan, resp.completion);
  source.on_complete(resp);
  report.responses.push_back(std::move(resp));
}

void ShardedServer::finish(unsigned s, Response resp, RequestSource& source,
                           ShardedServerReport& report) {
  if (resp.id < kSubIdBase) {
    deliver(std::move(resp), source, report);
    return;
  }

  // A fan-out piece: park it until its siblings complete.
  const auto parent_it = parent_of_.find(resp.id);
  HARMONIA_CHECK(parent_it != parent_of_.end());
  const std::uint64_t parent = parent_it->second;
  parent_of_.erase(parent_it);
  auto& merge = merges_.at(parent);
  merge.parts.emplace_back(s, std::move(resp));
  if (merge.parts.size() < merge.parts_expected) return;

  // All pieces in: reassemble in shard order (shards are ordered ranges,
  // so concatenation is globally ascending).
  std::sort(merge.parts.begin(), merge.parts.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  Response merged;
  merged.id = parent;
  merged.kind = RequestKind::kRange;
  merged.arrival = merge.original.arrival;
  merged.epoch = merge.parts.front().second.epoch;
  merged.dispatch = kInf;
  for (const auto& [shard_ord, part] : merge.parts) {
    (void)shard_ord;
    // The cross-shard epoch barrier quiesces every shard before an epoch
    // applies, so all pieces of a fan-out observe the same epoch count.
    HARMONIA_CHECK(part.epoch == merged.epoch);
    merged.dispatch = std::min(merged.dispatch, part.dispatch);
    merged.completion = std::max(merged.completion, part.completion);
    for (Value v : part.range_values) {
      if (merged.range_values.size() >= config_.batch.max_range_results) break;
      merged.range_values.push_back(v);
    }
  }
  merges_.erase(parent);
  deliver(std::move(merged), source, report);
}

void ShardedServer::handle_dispatch(unsigned s, BatchScheduler::Dispatch d,
                                    RequestSource& source,
                                    ShardedServerReport& report) {
  device_free_[s] = d.finish;
  ++report.batches;
  ++report.shard_batches[s];
  report.shard_queries[s] += d.batch_size;
  report.batch_size.add(static_cast<double>(d.batch_size));
  report.busy_seconds += d.service_seconds();
  for (Response& resp : d.responses) finish(s, std::move(resp), source, report);
}

void ShardedServer::run_epoch(double at, RequestSource& source,
                              ShardedServerReport& report) {
  // Quiesce: flush every shard's pending query batches so everything
  // admitted before the trigger is served by pre-epoch trees.
  for (unsigned s = 0; s < sched_.size(); ++s) {
    while (!sched_[s]->empty()) {
      handle_dispatch(s, sched_[s]->dispatch_ready(at, device_free_[s], epochs_),
                      source, report);
    }
  }

  // Barrier: the epoch starts when the slowest device drains.
  double start = at;
  for (const double f : device_free_) start = std::max(start, f);
  for (const double f : device_free_)
    report.barrier_wait_seconds += start - std::max(at, f);

  std::vector<queries::UpdateOp> ops;
  ops.reserve(pending_updates_.size());
  for (const Request& r : pending_updates_) ops.push_back({r.op, r.key, r.value});
  const UpdateStats stats =
      index_.update_batch(ops, config_.epoch.apply_threads);

  // One host CPU applies the whole epoch; per-shard image resyncs overlap
  // on their own links, so the resync charge is the slowest shard's.
  const double apply_seconds =
      static_cast<double>(ops.size()) * config_.epoch.seconds_per_op;
  const double finish_t = start + apply_seconds + index_.last_resync_seconds();

  ++epochs_;
  ++report.epochs;
  report.updates_applied += stats.total_ops();
  report.updates_failed += stats.failed;
  // Every device is held through the epoch: admission reopens on all
  // shards at the same instant (the atomicity the stress tests pin).
  report.busy_seconds +=
      (finish_t - start) * static_cast<double>(device_free_.size());
  for (double& f : device_free_) f = finish_t;

  for (const Request& r : pending_updates_) {
    Response resp;
    resp.id = r.id;
    resp.kind = RequestKind::kUpdate;
    resp.epoch = epochs_;
    resp.arrival = r.arrival;
    resp.dispatch = start;
    resp.completion = finish_t;
    report.makespan = std::max(report.makespan, resp.completion);
    source.on_complete(resp);
    report.responses.push_back(std::move(resp));
  }
  pending_updates_.clear();
}

ShardedServerReport ShardedServer::run(RequestSource& source) {
  ShardedServerReport report;
  report.shard_batches.assign(index_.num_shards(), 0);
  report.shard_queries.assign(index_.num_shards(), 0);
  double now = 0.0;

  while (true) {
    const Request* next = source.peek();
    const double t_arrival = next ? next->arrival : kInf;

    // Earliest dispatchable batch across shards: each shard's trigger
    // (size full, or oldest deadline) gated on its own device timeline.
    double t_batch = kInf;
    unsigned batch_shard = 0;
    for (unsigned s = 0; s < sched_.size(); ++s) {
      if (sched_[s]->empty()) continue;
      const double trigger =
          sched_[s]->size_ready() ? now : sched_[s]->next_deadline();
      const double t = std::max(trigger, device_free_[s]);
      if (t < t_batch) {
        t_batch = t;
        batch_shard = s;
      }
    }
    const double t_epoch =
        pending_updates_.empty()
            ? kInf
            : (pending_updates_.size() >= config_.epoch.max_buffered
                   ? now
                   : pending_updates_.front().arrival + config_.epoch.max_wait);

    if (t_arrival == kInf && t_batch == kInf && t_epoch == kInf) {
      // Stream exhausted, no armed trigger: final drain, then leftovers
      // of the update buffer as a last epoch.
      for (unsigned s = 0; s < sched_.size(); ++s) {
        while (!sched_[s]->empty()) {
          handle_dispatch(s,
                          sched_[s]->dispatch_ready(std::max(now, device_free_[s]),
                                                    device_free_[s], epochs_),
                          source, report);
        }
      }
      if (!pending_updates_.empty()) run_epoch(now, source, report);
      if (!source.peek()) break;  // on_complete may have injected arrivals
      continue;
    }

    if (t_arrival <= t_batch && t_arrival <= t_epoch) {
      now = t_arrival;
      const Request r = source.pop();
      ++report.arrivals;
      if (r.kind == RequestKind::kUpdate) {
        ++report.admitted;
        pending_updates_.push_back(r);
      } else {
        admit_query(r, source, report);
      }
    } else if (t_batch <= t_epoch) {
      now = t_batch;
      handle_dispatch(batch_shard,
                      sched_[batch_shard]->dispatch_ready(now, device_free_[batch_shard],
                                                          epochs_),
                      source, report);
    } else {
      now = t_epoch;
      run_epoch(now, source, report);
    }
  }

  HARMONIA_CHECK(merges_.empty());  // every fan-out reassembled
  return report;
}

ShardedServerReport ShardedServer::run(std::span<const Request> requests) {
  serve::VectorSource source(std::vector<Request>(requests.begin(), requests.end()));
  return run(source);
}

}  // namespace harmonia::shard
