#include "shard/sharded_server.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <string>

#include "common/expect.hpp"
#include "fault/checksum.hpp"

namespace harmonia::shard {

using serve::BatchScheduler;
using serve::Request;
using serve::RequestKind;
using serve::RequestSource;
using serve::Response;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

std::uint64_t sum(const std::vector<std::uint64_t>& v) {
  return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
}
}  // namespace

void ShardedServerReport::check_invariants() const {
  ServerReport::check_invariants();
  HARMONIA_CHECK_MSG(
      sum(shard_admitted) + update_requests == admitted,
      "sharded accounting broken: per-shard admissions sum to "
          << sum(shard_admitted) << " + update_requests=" << update_requests
          << " but admitted=" << admitted);
  HARMONIA_CHECK_MSG(sum(shard_dropped) == dropped,
                     "sharded accounting broken: per-shard drops sum to "
                         << sum(shard_dropped) << " but dropped=" << dropped);
  HARMONIA_CHECK_MSG(sum(shard_batches) == batches,
                     "sharded accounting broken: per-shard batches sum to "
                         << sum(shard_batches) << " but batches=" << batches);
}

ShardedServer::ShardedServer(ShardedIndex& index, const ShardedServerConfig& config)
    : index_(index),
      config_(config),
      injector_(config.faults, config.mitigation, index.num_shards()),
      sched_(index.num_shards()),
      device_free_(index.num_shards(), 0.0),
      fenced_(index.num_shards(), 0),
      fence_start_(index.num_shards(), 0.0),
      restore_at_(index.num_shards(), kInf),
      cpu_free_(index.num_shards(), 0.0) {
  for (unsigned s = 0; s < index_.num_shards(); ++s) {
    HARMONIA_CHECK_MSG(index_.shard(s) != nullptr,
                       "shard " << s << " holds no keys — plan the partition "
                                << "from the served keys (sample_balanced)");
    sched_[s] = std::make_unique<BatchScheduler>(*index_.shard(s), config_.link,
                                                 config_.batch);
    if (injector_.active()) sched_[s]->set_fault_context(&injector_, s);
    if (config_.obs.active()) sched_[s]->set_observer(config_.obs, s);
  }
  if (config_.obs.active()) {
    injector_.set_observer(config_.obs);
    index_.set_observer(config_.obs);
    if (config_.obs.metrics != nullptr) {
      obs::MetricsRegistry& m = *config_.obs.metrics;
      split_ranges_total_ = &m.counter("shard_split_ranges_total");
      degraded_total_ = &m.counter("shard_degraded_requests_total");
      epochs_total_ = &m.counter("serve_epochs_total");
    }
  }
}

std::size_t ShardedServer::total_depth() const {
  std::size_t n = 0;
  for (const auto& s : sched_) n += s->depth();
  return n;
}

void ShardedServer::drop(const Request& r, unsigned shard, RequestSource& source,
                         ShardedServerReport& report) {
  ++report.dropped;
  ++report.shard_dropped[shard];
  Response resp;
  resp.id = r.id;
  resp.kind = r.kind;
  resp.dropped = true;
  resp.epoch = epochs_;
  resp.arrival = resp.dispatch = resp.completion = r.arrival;
  resp.value = kNotFound;
  if (config_.obs.trace != nullptr) {
    config_.obs.trace->stamp(resp.id, obs::Stage::kReply, resp.completion, shard,
                             "rejected");
  }
  report.makespan = std::max(report.makespan, resp.completion);
  source.on_complete(resp);
  report.responses.push_back(std::move(resp));
}

void ShardedServer::admit_query(const Request& r, RequestSource& source,
                                ShardedServerReport& report) {
  report.queue_depth.add(static_cast<double>(total_depth()));

  if (r.kind == RequestKind::kPoint) {
    const unsigned s = index_.plan().shard_of(r.key);
    if (fenced_[s]) {
      // The owner shard is fenced: serve the query degraded from the CPU
      // oracle (or shed if its backlog is full) — other ranges unaffected.
      ++report.admitted;
      ++report.shard_admitted[s];
      finish(s, degraded_serve(s, r, r.arrival), source, report);
    } else if (sched_[s]->admit(r)) {
      ++report.admitted;
      ++report.shard_admitted[s];
    } else {
      drop(r, s, source, report);
    }
    return;
  }

  HARMONIA_CHECK(r.kind == RequestKind::kRange);
  HARMONIA_CHECK(r.key <= r.hi);
  const unsigned s0 = index_.plan().shard_of(r.key);
  const unsigned s1 = index_.plan().shard_of(r.hi);
  if (s0 == s1) {
    // Whole span inside one shard: an ordinary range request.
    if (fenced_[s0]) {
      ++report.admitted;
      ++report.shard_admitted[s0];
      finish(s0, degraded_serve(s0, r, r.arrival), source, report);
    } else if (sched_[s0]->admit(r)) {
      ++report.admitted;
      ++report.shard_admitted[s0];
    } else {
      drop(r, s0, source, report);
    }
    return;
  }

  // Straddling: split into per-shard sub-requests with clamped bounds,
  // admitted all-or-nothing so a partially-enqueued fan-out never exists.
  // Fenced shards take their piece degraded, so only live shards' lanes
  // are probed.
  for (unsigned s = s0; s <= s1; ++s) {
    if (!fenced_[s] && sched_[s]->free_slots(RequestKind::kRange) == 0) {
      drop(r, s, source, report);
      return;
    }
  }
  ++report.admitted;
  ++report.shard_admitted[s0];
  ++report.split_ranges;
  if (split_ranges_total_ != nullptr) split_ranges_total_->inc();
  if (config_.obs.trace != nullptr)
    config_.obs.trace->stamp(r.id, obs::Stage::kQueueEnter, r.arrival, s0,
                             "fan-out shards=" + std::to_string(s1 - s0 + 1));
  PendingMerge merge;
  merge.parts_expected = s1 - s0 + 1;
  merge.original = r;
  merges_.emplace(r.id, std::move(merge));
  for (unsigned s = s0; s <= s1; ++s) {
    Request sub = r;
    sub.id = next_sub_id_++;
    sub.key = std::max(r.key, index_.plan().lo(s));
    sub.hi = std::min(r.hi, index_.plan().hi(s));
    parent_of_.emplace(sub.id, r.id);
    if (config_.obs.trace != nullptr)
      config_.obs.trace->stamp(r.id, obs::Stage::kShardScatter, r.arrival, s,
                               "sub=" + std::to_string(sub.id));
    if (fenced_[s]) {
      finish(s, degraded_serve(s, sub, r.arrival), source, report);
      continue;
    }
    const bool ok = sched_[s]->admit(sub);
    HARMONIA_CHECK(ok);  // free_slots was probed above
  }
}

void ShardedServer::deliver(Response resp, RequestSource& source,
                            ShardedServerReport& report) {
  if (resp.dropped) {
    // A fault mitigation gave up on this admitted query (retry budget or
    // degraded backlog): a shed, not an admission drop.
    ++report.shed;
  } else {
    ++report.completed;
    report.latency.add(resp.latency());
    report.queue_delay.add(resp.queue_delay());
  }
  if (config_.obs.trace != nullptr) {
    config_.obs.trace->stamp(resp.id, obs::Stage::kReply, resp.completion,
                             obs::TraceRecorder::kNoShard,
                             resp.dropped ? "shed" : std::string{});
  }
  report.makespan = std::max(report.makespan, resp.completion);
  source.on_complete(resp);
  report.responses.push_back(std::move(resp));
}

void ShardedServer::finish(unsigned s, Response resp, RequestSource& source,
                           ShardedServerReport& report) {
  if (resp.id < kSubIdBase) {
    deliver(std::move(resp), source, report);
    return;
  }

  // A fan-out piece: park it until its siblings complete.
  const auto parent_it = parent_of_.find(resp.id);
  HARMONIA_CHECK(parent_it != parent_of_.end());
  const std::uint64_t parent = parent_it->second;
  parent_of_.erase(parent_it);
  auto& merge = merges_.at(parent);
  merge.parts.emplace_back(s, std::move(resp));
  if (merge.parts.size() < merge.parts_expected) return;

  // All pieces in: reassemble in shard order (shards are ordered ranges,
  // so concatenation is globally ascending). A dropped piece (shed by a
  // fault mitigation) poisons the whole fan-out — a response with a gap
  // in its range would be silently wrong, so the merge answers dropped.
  std::sort(merge.parts.begin(), merge.parts.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  Response merged;
  merged.id = parent;
  merged.kind = RequestKind::kRange;
  merged.arrival = merge.original.arrival;
  merged.epoch = epochs_;
  merged.dispatch = kInf;
  bool seen_live = false;
  for (const auto& [shard_ord, part] : merge.parts) {
    (void)shard_ord;
    merged.dispatch = std::min(merged.dispatch, part.dispatch);
    merged.completion = std::max(merged.completion, part.completion);
    if (part.dropped) {
      merged.dropped = true;
      continue;
    }
    // The cross-shard epoch barrier quiesces every shard before an epoch
    // applies, so all live pieces of a fan-out observe the same epoch.
    if (!seen_live) {
      seen_live = true;
      merged.epoch = part.epoch;
    }
    HARMONIA_CHECK(part.epoch == merged.epoch);
  }
  if (merged.dropped) {
    merged.range_values.clear();
  } else {
    for (const auto& [shard_ord, part] : merge.parts) {
      (void)shard_ord;
      for (Value v : part.range_values) {
        if (merged.range_values.size() >= config_.batch.max_range_results) break;
        merged.range_values.push_back(v);
      }
    }
  }
  const std::size_t parts = merge.parts.size();
  merges_.erase(parent);  // invalidates `merge`
  if (config_.obs.trace != nullptr) {
    config_.obs.trace->stamp(merged.id, obs::Stage::kGatherMerge,
                             merged.completion, obs::TraceRecorder::kNoShard,
                             "parts=" + std::to_string(parts));
  }
  deliver(std::move(merged), source, report);
}

void ShardedServer::handle_dispatch(unsigned s, BatchScheduler::Dispatch d,
                                    RequestSource& source,
                                    ShardedServerReport& report) {
  device_free_[s] = d.finish;
  ++report.batches;
  ++report.shard_batches[s];
  report.shard_queries[s] += d.batch_size;
  report.batch_size.add(static_cast<double>(d.batch_size));
  report.busy_seconds += d.service_seconds();
  for (Response& resp : d.responses) finish(s, std::move(resp), source, report);
}

void ShardedServer::run_epoch(double at, RequestSource& source,
                              ShardedServerReport& report) {
  // Quiesce: flush every shard's pending query batches so everything
  // admitted before the trigger is served by pre-epoch trees.
  for (unsigned s = 0; s < sched_.size(); ++s) {
    while (!sched_[s]->empty()) {
      handle_dispatch(s, sched_[s]->dispatch_ready(at, device_free_[s], epochs_),
                      source, report);
    }
  }

  // Barrier: the epoch starts when the slowest device drains.
  double start = at;
  for (const double f : device_free_) start = std::max(start, f);
  for (const double f : device_free_)
    report.barrier_wait_seconds += start - std::max(at, f);
  if (config_.obs.trace != nullptr) {
    config_.obs.trace->annotate(
        start, obs::TraceRecorder::kNoShard,
        "epoch barrier epoch=" + std::to_string(epochs_ + 1) +
            " updates=" + std::to_string(pending_updates_.size()));
  }

  std::vector<queries::UpdateOp> ops;
  ops.reserve(pending_updates_.size());
  for (const Request& r : pending_updates_) ops.push_back({r.op, r.key, r.value});
  const UpdateStats stats =
      index_.update_batch(ops, config_.epoch.apply_threads);

  // One host CPU applies the whole epoch; per-shard image resyncs overlap
  // on their own links, so the resync charge is the slowest shard's.
  const double apply_seconds =
      static_cast<double>(ops.size()) * config_.epoch.seconds_per_op;
  double resync_seconds = index_.last_resync_seconds();
  if (injector_.active()) {
    // Recompute the resync charge per touched shard so each pays its own
    // slowdown windows, and give armed corruption events their shot at
    // the fresh images — the CRC32 audit catches and re-images before
    // admission reopens, so a corrupt image is never served.
    std::vector<char> touched(index_.num_shards(), 0);
    for (const auto& op : ops) touched[index_.plan().shard_of(op.key)] = 1;
    resync_seconds = 0.0;
    const double resync_at = start + apply_seconds;
    for (unsigned s = 0; s < index_.num_shards(); ++s) {
      if (!touched[s] || index_.shard(s) == nullptr) continue;
      const double factor = injector_.transfer_factor(s, resync_at);
      double rs = factor *
                  image_resync_seconds(index_.shard(s)->tree(), config_.link);
      if (injector_.maybe_corrupt_resync(s, *index_.shard(s), resync_at))
        rs += factor * injector_.audit_and_repair(s, *index_.shard(s),
                                                  config_.link, resync_at);
      resync_seconds = std::max(resync_seconds, rs);
    }
  }
  const double finish_t = start + apply_seconds + resync_seconds;

  ++epochs_;
  ++report.epochs;
  if (epochs_total_ != nullptr) epochs_total_->inc();
  report.updates_applied += stats.total_ops();
  report.updates_failed += stats.failed;
  // Every device is held through the epoch: admission reopens on all
  // shards at the same instant (the atomicity the stress tests pin).
  report.busy_seconds +=
      (finish_t - start) * static_cast<double>(device_free_.size());
  for (double& f : device_free_) f = finish_t;

  for (const Request& r : pending_updates_) {
    Response resp;
    resp.id = r.id;
    resp.kind = RequestKind::kUpdate;
    resp.epoch = epochs_;
    resp.arrival = r.arrival;
    resp.dispatch = start;
    resp.completion = finish_t;
    if (config_.obs.trace != nullptr) {
      config_.obs.trace->stamp(resp.id, obs::Stage::kDispatch, start,
                               obs::TraceRecorder::kNoShard,
                               "epoch=" + std::to_string(epochs_));
      config_.obs.trace->stamp(resp.id, obs::Stage::kReply, finish_t,
                               obs::TraceRecorder::kNoShard);
    }
    report.makespan = std::max(report.makespan, resp.completion);
    source.on_complete(resp);
    report.responses.push_back(std::move(resp));
  }
  pending_updates_.clear();
}

void ShardedServer::fence_shard(double now, RequestSource& source,
                                ShardedServerReport& report) {
  const auto ev = injector_.take_shard_lost(now);
  HARMONIA_CHECK(ev.has_value());
  const unsigned s = ev->shard;
  HARMONIA_CHECK_MSG(!fenced_[s],
                     "shard " << s << " lost twice without a restore between");
  fenced_[s] = 1;
  fence_start_[s] = now;
  restore_at_[s] = now + ev->duration;
  cpu_free_[s] = std::max(cpu_free_[s], now);
  // The device's in-flight admission queue dies with it. The queued
  // requests are not lost, though: re-route them through the degraded
  // path in arrival order (the CPU backlog bound sheds the excess).
  for (const Request& r : sched_[s]->evict_all())
    finish(s, degraded_serve(s, r, now), source, report);
}

void ShardedServer::restore_shard(double now, ShardedServerReport& report) {
  unsigned s = 0;
  for (unsigned i = 1; i < restore_at_.size(); ++i)
    if (restore_at_[i] < restore_at_[s]) s = i;
  HARMONIA_CHECK(restore_at_[s] < kInf && fenced_[s]);
  restore_at_[s] = kInf;

  // The replacement device comes up empty: re-image it from the host
  // tree (the source of truth), audit the fresh image, and rejoin. The
  // re-image transfer pays any slowdown window live on this shard's link.
  fault::FaultReport& rep = injector_.report();
  HarmoniaIndex& idx = *index_.shard(s);
  idx.resync_device();
  ++rep.audits;
  HARMONIA_CHECK_MSG(fault::verify_image(idx), "restored image failed audit");
  ++rep.reimages;
  const double reimage = injector_.transfer_factor(s, now) *
                         image_resync_seconds(idx.tree(), config_.link);
  rep.reimage_seconds += reimage;
  device_free_[s] = std::max(device_free_[s], now + reimage);
  report.busy_seconds += reimage;

  fenced_[s] = 0;
  ++rep.shards_restored;
  rep.fenced_seconds += now - fence_start_[s];
  if (config_.obs.active()) {
    if (config_.obs.metrics != nullptr)
      config_.obs.metrics->counter("fault_shards_restored_total").inc();
    if (config_.obs.trace != nullptr)
      config_.obs.trace->annotate(now, s, "shard restored: re-imaged and rejoined");
  }
}

serve::Response ShardedServer::degraded_serve(unsigned s, const Request& r,
                                              double now) {
  const fault::DegradedPolicy& pol = injector_.mitigation().degraded;
  fault::FaultReport& rep = injector_.report();
  Response resp;
  resp.id = r.id;
  resp.kind = r.kind;
  resp.epoch = epochs_;
  resp.arrival = r.arrival;

  // Admission shedding for the affected range only: once the CPU oracle
  // is this far behind, answering dropped beats unbounded latency.
  if (degraded_total_ != nullptr) degraded_total_->inc();
  if (std::max(cpu_free_[s], now) - now > pol.max_backlog) {
    ++rep.degraded_shed;
    resp.dropped = true;
    resp.dispatch = resp.completion = now;
    if (config_.obs.trace != nullptr)
      config_.obs.trace->stamp(r.id, obs::Stage::kDispatch, now, s,
                               "degraded shed: cpu backlog full");
    return resp;
  }

  double cost = 0.0;
  if (r.kind == RequestKind::kPoint) {
    ++rep.degraded_points;
    if (const auto v = index_.shard(s)->search_host(r.key)) resp.value = *v;
    cost = pol.seconds_per_point;
  } else {
    ++rep.degraded_ranges;
    const auto entries = index_.shard(s)->range_host(
        std::max(r.key, index_.plan().lo(s)), std::min(r.hi, index_.plan().hi(s)),
        config_.batch.max_range_results);
    resp.range_values.reserve(entries.size());
    for (const auto& e : entries) resp.range_values.push_back(e.value);
    cost = pol.seconds_per_range +
           static_cast<double>(entries.size()) * pol.seconds_per_result;
  }
  const double begin = std::max(cpu_free_[s], now);
  cpu_free_[s] = begin + cost;
  rep.degraded_seconds += cost;
  resp.dispatch = begin;
  resp.completion = cpu_free_[s];
  if (config_.obs.trace != nullptr)
    config_.obs.trace->stamp(r.id, obs::Stage::kDispatch, begin, s, "degraded");
  return resp;
}

double ShardedServer::next_restore_time() const {
  double t = kInf;
  for (const double r : restore_at_) t = std::min(t, r);
  return t;
}

ShardedServerReport ShardedServer::run(RequestSource& source) {
  ShardedServerReport report;
  report.shard_batches.assign(index_.num_shards(), 0);
  report.shard_queries.assign(index_.num_shards(), 0);
  report.shard_admitted.assign(index_.num_shards(), 0);
  report.shard_dropped.assign(index_.num_shards(), 0);
  double now = 0.0;

  while (true) {
    const Request* next = source.peek();
    const double t_arrival = next ? next->arrival : kInf;

    // Earliest dispatchable batch across shards: each shard's trigger
    // (size full, or oldest deadline) gated on its own device timeline.
    double t_batch = kInf;
    unsigned batch_shard = 0;
    for (unsigned s = 0; s < sched_.size(); ++s) {
      if (sched_[s]->empty()) continue;
      const double trigger =
          sched_[s]->size_ready() ? now : sched_[s]->next_deadline();
      const double t = std::max(trigger, device_free_[s]);
      if (t < t_batch) {
        t_batch = t;
        batch_shard = s;
      }
    }
    const double t_epoch =
        pending_updates_.empty()
            ? kInf
            : (pending_updates_.size() >= config_.epoch.max_buffered
                   ? now
                   : pending_updates_.front().arrival + config_.epoch.max_wait);

    if (t_arrival == kInf && t_batch == kInf && t_epoch == kInf) {
      // Stream exhausted, no armed trigger: final drain, then leftovers
      // of the update buffer as a last epoch. Pending restores complete
      // first (lose events not yet fired are inert past stream end).
      while (next_restore_time() < kInf) {
        now = std::max(now, next_restore_time());
        restore_shard(now, report);
      }
      for (unsigned s = 0; s < sched_.size(); ++s) {
        while (!sched_[s]->empty()) {
          handle_dispatch(s,
                          sched_[s]->dispatch_ready(std::max(now, device_free_[s]),
                                                    device_free_[s], epochs_),
                          source, report);
        }
      }
      if (!pending_updates_.empty()) run_epoch(now, source, report);
      if (!source.peek()) break;  // on_complete may have injected arrivals
      continue;
    }

    // Fault events cut ahead of same-instant work: a shard lost at t is
    // fenced before anything else dispatches at t, and a due restore
    // rejoins its shard before new work routes around it.
    if (injector_.active()) {
      const double t_fault = injector_.next_shard_lost_time();
      const double t_restore = next_restore_time();
      const double t_work = std::min(t_arrival, std::min(t_batch, t_epoch));
      if (t_fault <= t_work && t_fault <= t_restore) {
        now = std::max(now, t_fault);
        fence_shard(now, source, report);
        continue;
      }
      if (t_restore <= t_work) {
        now = std::max(now, t_restore);
        restore_shard(now, report);
        continue;
      }
    }

    if (t_arrival <= t_batch && t_arrival <= t_epoch) {
      now = t_arrival;
      const Request r = source.pop();
      ++report.arrivals;
      if (r.kind == RequestKind::kUpdate) {
        ++report.admitted;
        ++report.update_requests;
        pending_updates_.push_back(r);
        if (config_.obs.trace != nullptr)
          config_.obs.trace->stamp(r.id, obs::Stage::kQueueEnter, r.arrival,
                                   obs::TraceRecorder::kNoShard, "update");
      } else {
        admit_query(r, source, report);
      }
    } else if (t_batch <= t_epoch) {
      now = t_batch;
      handle_dispatch(batch_shard,
                      sched_[batch_shard]->dispatch_ready(now, device_free_[batch_shard],
                                                          epochs_),
                      source, report);
    } else {
      now = t_epoch;
      run_epoch(now, source, report);
    }
  }

  HARMONIA_CHECK(merges_.empty());  // every fan-out reassembled
  report.faults = injector_.report();
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->gauge("serve_makespan_seconds").set(report.makespan);
    config_.obs.metrics->gauge("serve_busy_seconds").set(report.busy_seconds);
  }
  report.check_invariants();
  return report;
}

ShardedServerReport ShardedServer::run(std::span<const Request> requests) {
  serve::VectorSource source(std::vector<Request>(requests.begin(), requests.end()));
  return run(source);
}

}  // namespace harmonia::shard
