#include "shard/sharded_server.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "common/expect.hpp"
#include "fault/checksum.hpp"
#include "persist/update_log.hpp"

namespace harmonia::shard {

using serve::BatchScheduler;
using serve::EpochMode;
using serve::Request;
using serve::RequestKind;
using serve::RequestSource;
using serve::Response;
using serve::ServerReport;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

void accumulate(UpdateStats& agg, const UpdateStats& st) {
  agg.updates += st.updates;
  agg.inserts += st.inserts;
  agg.deletes += st.deletes;
  agg.failed += st.failed;
  agg.fine_path_ops += st.fine_path_ops;
  agg.coarse_path_ops += st.coarse_path_ops;
  agg.coarse_retries += st.coarse_retries;
  agg.aux_nodes += st.aux_nodes;
  agg.moved_slots += st.moved_slots;
  agg.rebuilt = agg.rebuilt || st.rebuilt;
  agg.apply_seconds += st.apply_seconds;
  agg.rebuild_seconds += st.rebuild_seconds;
}
}  // namespace

ShardedServer::ShardedServer(ShardedIndex& index,
                             const serve::ServeOptions& config)
    : index_(index),
      config_(config),
      injector_(config.faults, config.mitigation, index.num_shards(),
                config.replicas),
      admission_(config.qos),
      sched_(index.num_shards()),
      replicas_(config.replicas),
      replica_free_(std::size_t{index.num_shards()} * config.replicas, 0.0),
      groups_(index.num_shards(), ReplicaGroup(config.replicas)),
      rejoin_at_(std::size_t{index.num_shards()} * config.replicas, kInf),
      lost_plan_(std::size_t{index.num_shards()} * config.replicas, 0),
      fence_replica_(index.num_shards(), 0),
      epoch_ops_(index.num_shards()),
      fenced_(index.num_shards(), 0),
      fence_start_(index.num_shards(), 0.0),
      restore_at_(index.num_shards(), kInf),
      cpu_free_(index.num_shards(), 0.0),
      shard_epoch_(index.num_shards(), 0),
      fence_depth_(index.num_shards(), 0),
      window_routed_(index.num_shards(), 0) {
  config_.validate(index_.num_shards());
  init_tuning(config_);
  if (config_.durability != nullptr) {
    HARMONIA_CHECK(config_.durability->num_shards() == index_.num_shards());
    durability_.resize(index_.num_shards());
    for (unsigned s = 0; s < index_.num_shards(); ++s)
      durability_[s] = config_.durability->shard(s);
  }
  for (unsigned s = 0; s < index_.num_shards(); ++s) {
    HARMONIA_CHECK_MSG(index_.shard(s) != nullptr,
                       "shard " << s << " holds no keys — plan the partition "
                                << "from the served keys (sample_balanced)");
    sched_[s] = std::make_unique<BatchScheduler>(*index_.shard(s), config_.link,
                                                 config_.batch, config_.qos);
    if (injector_.active()) sched_[s]->set_fault_context(&injector_, s);
    if (config_.obs.active()) sched_[s]->set_observer(config_.obs, s);
    // Incremental mode: every shard needs its own device overlay arrays
    // (only grow — a caller may have pre-sized a larger bound).
    if (config_.epoch.mode == EpochMode::kIncremental &&
        index_.shard(s)->overlay_capacity() < config_.epoch.overlay_capacity) {
      index_.shard(s)->set_overlay_capacity(config_.epoch.overlay_capacity);
    }
  }
  if (config_.obs.active()) {
    injector_.set_observer(config_.obs);
    index_.set_observer(config_.obs);
    if (config_.obs.metrics != nullptr) {
      obs::MetricsRegistry& m = *config_.obs.metrics;
      split_ranges_total_ = &m.counter("shard_split_ranges_total");
      split_scans_total_ = &m.counter("shard_split_scans_total");
      degraded_total_ = &m.counter("shard_degraded_requests_total");
      epochs_total_ = &m.counter("serve_epochs_total");
      for (std::size_t c = 0; c < qos::kNumClasses; ++c) {
        const std::string labels = std::string{"{class=\""} +
                                   qos::to_string(qos::priority_at(c)) + "\"}";
        class_metrics_[c].completed =
            &m.counter("serve_class_completed_total" + labels);
        class_metrics_[c].shed = &m.counter("serve_class_shed_total" + labels);
        class_metrics_[c].dropped =
            &m.counter("serve_class_dropped_total" + labels);
        class_metrics_[c].throttled =
            &m.counter("serve_class_throttled_total" + labels);
        class_metrics_[c].latency = &m.histogram(
            "serve_class_latency_seconds" + labels,
            obs::LatencyHistogram::exponential_edges(1e-7, 1.0, 28));
      }
      const auto edges = obs::LatencyHistogram::exponential_edges(1e-7, 1.0, 28);
      swap_wait_hist_ = &m.histogram("serve_epoch_swap_wait_seconds", edges);
      stall_hist_ = &m.histogram("serve_epoch_stall_seconds", edges);
    }
  }
}

std::size_t ShardedServer::total_depth() const {
  std::size_t n = 0;
  for (const auto& s : sched_) n += s->depth();
  return n;
}

void ShardedServer::begin_run(ServerReport& report) {
  report.shard_batches.assign(index_.num_shards(), 0);
  report.shard_queries.assign(index_.num_shards(), 0);
  report.shard_admitted.assign(index_.num_shards(), 0);
  report.shard_dropped.assign(index_.num_shards(), 0);
  report.replica_batches.assign(std::size_t{index_.num_shards()} * replicas_, 0);
  report.plan_version = plan_version_;
}

void ShardedServer::drop(const Request& r, unsigned shard, RequestSource& source,
                         ServerReport& report, const char* note) {
  ++report.dropped;
  ++report.shard_dropped[shard];
  const std::size_t c = qos::index(r.klass);
  ++report.class_dropped[c];
  if (class_metrics_[c].dropped != nullptr) class_metrics_[c].dropped->inc();
  Response resp = serve::response_to(r);
  resp.dropped = true;
  resp.epoch = shard_epoch_[shard];
  resp.dispatch = resp.completion = r.arrival;
  if (config_.obs.trace != nullptr) {
    config_.obs.trace->stamp(resp.id, obs::Stage::kReply, resp.completion, shard,
                             note);
  }
  report.makespan = std::max(report.makespan, resp.completion);
  source.on_complete(resp);
  report.responses.push_back(std::move(resp));
}

std::uint32_t ShardedServer::clamped_scan_n(const Request& r) const {
  return std::min<std::uint32_t>(std::max<std::uint32_t>(r.scan_n, 1),
                                 config_.batch.max_range_results);
}

bool ShardedServer::straddles(const Request& r) const {
  if (r.kind == RequestKind::kRange)
    return index_.plan().shard_of(r.key) != index_.plan().shard_of(r.hi);
  if (r.kind == RequestKind::kScan)
    return index_.scan_end_shard(r.key, clamped_scan_n(r)) !=
           index_.plan().shard_of(r.key);
  return false;
}

void ShardedServer::submit(const Request& r, RequestSource& source,
                           ServerReport& report) {
  // Hot-range detection rides the arrival clock (queries only — updates
  // never reach this hook), so the cadence needs no extra event source.
  maybe_start_migration(r.arrival);

  // Per-tenant token buckets gate everything shard routing would see: a
  // tenant pushing past its provisioned rate is answered dropped before
  // it can displace anyone. Booked against the owner/first shard.
  if (admission_.throttling() && !admission_.admit(r.tenant, r.arrival)) {
    ++report.throttled;
    const std::size_t c = qos::index(r.klass);
    ++report.class_throttled[c];
    if (class_metrics_[c].throttled != nullptr)
      class_metrics_[c].throttled->inc();
    drop(r, index_.plan().shard_of(r.key), source, report, "throttled");
    return;
  }

  // While the shards disagree on their epoch version (between the first
  // and last staggered swap of a staged epoch), a straddling range or
  // scan has no single snapshot to read: park it and re-admit after the
  // last swap. Parking starts as soon as a staged image is swap-ready:
  // admitting more fan-outs then would keep re-raising the version fence
  // and starve the swap under a sustained straddler stream.
  if ((mixed_version() || swap_pending(r.arrival)) && straddles(r)) {
    if (config_.obs.trace != nullptr)
      config_.obs.trace->stamp(r.id, obs::Stage::kQueueEnter, r.arrival,
                               obs::TraceRecorder::kNoShard,
                               "parked: shards mid-swap");
    parked_.push_back(r);
    return;
  }

  // A migration ready to flip drains its pair the same way: requests
  // touching the donor/receiver span park until the plan commits (their
  // routing is about to change), everything else admits normally.
  if (migration_swap_pending(r.arrival) && touches_migration(r)) {
    if (config_.obs.trace != nullptr)
      config_.obs.trace->stamp(r.id, obs::Stage::kQueueEnter, r.arrival,
                               obs::TraceRecorder::kNoShard,
                               "parked: plan flip pending");
    parked_.push_back(r);
    return;
  }
  admit_query(r, r.arrival, source, report);
}

void ShardedServer::buffer_update(const Request& r) {
  pending_updates_.push_back(r);
  if (config_.obs.trace != nullptr)
    config_.obs.trace->stamp(r.id, obs::Stage::kQueueEnter, r.arrival,
                             obs::TraceRecorder::kNoShard, "update");
}

void ShardedServer::handle_evicted(unsigned s, Request victim, double now,
                                   RequestSource& source,
                                   ServerReport& report) {
  if (config_.obs.trace != nullptr)
    config_.obs.trace->annotate(
        now, s,
        "evicted id=" + std::to_string(victim.id) + " class=" +
            qos::to_string(victim.klass));
  Response resp = serve::response_to(victim);
  resp.dropped = true;
  resp.epoch = shard_epoch_[s];
  resp.dispatch = resp.completion = now;
  // An evicted fan-out piece no longer pins the shard's snapshot; its
  // dropped response poisons the parent merge (finish handles both).
  if (resp.id >= kSubIdBase) {
    HARMONIA_CHECK(fence_depth_[s] > 0);
    --fence_depth_[s];
  }
  finish(s, std::move(resp), source, report);
}

void ShardedServer::admit_query(const Request& r, double now,
                                RequestSource& source, ServerReport& report) {
  report.queue_depth.add(static_cast<double>(total_depth()));

  Request q = r;
  if (q.kind == RequestKind::kScan) q.scan_n = clamped_scan_n(q);

  // Resolve the request's shard span: one shard for points, the bounds'
  // shards for ranges, the count-based coverage for scans.
  unsigned s0 = index_.plan().shard_of(q.key);
  unsigned s1 = s0;
  if (q.kind == RequestKind::kRange) {
    HARMONIA_CHECK(q.key <= q.hi);
    s1 = index_.plan().shard_of(q.hi);
  } else if (q.kind == RequestKind::kScan) {
    s1 = index_.scan_end_shard(q.key, q.scan_n);
  }

  // Hotness window: every shard the query's span touches is load it
  // routes there (parked requests count once, at re-admission).
  if (config_.reshard.split_hot) {
    for (unsigned s = s0; s <= s1; ++s) ++window_routed_[s];
  }

  if (s0 == s1) {
    // Whole request inside one shard: an ordinary lane admission.
    if (fenced_[s0]) {
      // The owner shard is fenced: serve the query degraded from the CPU
      // oracle (or shed if its backlog is full) — other ranges unaffected.
      ++report.admitted;
      ++report.shard_admitted[s0];
      ++report.class_admitted[qos::index(q.klass)];
      finish(s0, degraded_serve(s0, q, now), source, report);
      return;
    }
    const BatchScheduler::Admit a = sched_[s0]->admit(q);
    if (a.admitted) {
      ++report.admitted;
      ++report.shard_admitted[s0];
      ++report.class_admitted[qos::index(q.klass)];
      if (a.evicted.has_value())
        handle_evicted(s0, *a.evicted, now, source, report);
    } else {
      drop(q, s0, source, report);
    }
    return;
  }

  // Straddling: split into per-shard sub-requests with clamped bounds,
  // admitted all-or-nothing so a partially-enqueued fan-out never exists.
  // Fenced shards take their piece degraded, so only live shards' lanes
  // are probed — admissible_slots counts evictable lower-class requests
  // too, so under QoS a full lane is still admissible to a higher class.
  // Each queued piece raises its shard's version fence: the shard cannot
  // swap a staged epoch image under a fan-out in flight.
  for (unsigned s = s0; s <= s1; ++s) {
    if (!fenced_[s] && sched_[s]->admissible_slots(q.kind, q.klass) == 0) {
      drop(q, s, source, report);
      return;
    }
  }
  ++report.admitted;
  ++report.shard_admitted[s0];
  ++report.class_admitted[qos::index(q.klass)];
  if (q.kind == RequestKind::kScan) {
    ++report.split_scans;
    if (split_scans_total_ != nullptr) split_scans_total_->inc();
  } else {
    ++report.split_ranges;
    if (split_ranges_total_ != nullptr) split_ranges_total_->inc();
  }
  if (config_.obs.trace != nullptr)
    config_.obs.trace->stamp(q.id, obs::Stage::kQueueEnter, q.arrival, s0,
                             "fan-out shards=" + std::to_string(s1 - s0 + 1));
  PendingMerge merge;
  merge.parts_expected = s1 - s0 + 1;
  merge.original = q;
  merges_.emplace(q.id, std::move(merge));
  for (unsigned s = s0; s <= s1; ++s) {
    Request sub = q;
    sub.id = next_sub_id_++;
    sub.key = std::max(q.key, index_.plan().lo(s));
    if (q.kind == RequestKind::kRange)
      sub.hi = std::min(q.hi, index_.plan().hi(s));
    // Scan pieces keep the full scan_n: earlier shards may hold fewer
    // tail keys than the span estimate counted on; the merge truncates.
    parent_of_.emplace(sub.id, q.id);
    if (config_.obs.trace != nullptr)
      config_.obs.trace->stamp(q.id, obs::Stage::kShardScatter, q.arrival, s,
                               "sub=" + std::to_string(sub.id));
    if (fenced_[s]) {
      finish(s, degraded_serve(s, sub, now), source, report);
      continue;
    }
    const BatchScheduler::Admit a = sched_[s]->admit(sub);
    HARMONIA_CHECK(a.admitted);  // admissible_slots was probed above
    ++fence_depth_[s];
    if (a.evicted.has_value()) handle_evicted(s, *a.evicted, now, source, report);
  }
}

void ShardedServer::deliver(Response resp, RequestSource& source,
                            ServerReport& report) {
  const std::size_t c = qos::index(resp.klass);
  if (resp.dropped) {
    // A fault mitigation or QoS eviction gave up on this admitted query:
    // a shed, not an admission drop.
    ++report.shed;
    ++report.class_shed[c];
    if (class_metrics_[c].shed != nullptr) class_metrics_[c].shed->inc();
  } else {
    ++report.completed;
    report.latency.add(resp.latency());
    report.queue_delay.add(resp.queue_delay());
    ++report.class_completed[c];
    report.class_latency[c].add(resp.latency());
    if (class_metrics_[c].completed != nullptr) {
      class_metrics_[c].completed->inc();
      class_metrics_[c].latency->observe(resp.latency());
    }
  }
  if (config_.obs.trace != nullptr) {
    config_.obs.trace->stamp(resp.id, obs::Stage::kReply, resp.completion,
                             obs::TraceRecorder::kNoShard,
                             resp.dropped ? "shed" : std::string{});
  }
  report.makespan = std::max(report.makespan, resp.completion);
  source.on_complete(resp);
  report.responses.push_back(std::move(resp));
}

void ShardedServer::finish(unsigned s, Response resp, RequestSource& source,
                           ServerReport& report) {
  if (resp.id < kSubIdBase) {
    deliver(std::move(resp), source, report);
    return;
  }

  // A fan-out piece: park it until its siblings complete.
  const auto parent_it = parent_of_.find(resp.id);
  HARMONIA_CHECK(parent_it != parent_of_.end());
  const std::uint64_t parent = parent_it->second;
  parent_of_.erase(parent_it);
  auto& merge = merges_.at(parent);
  merge.parts.emplace_back(s, std::move(resp));
  if (merge.parts.size() < merge.parts_expected) return;

  // All pieces in: reassemble in shard order (shards are ordered ranges,
  // so concatenation is globally ascending). A dropped piece (shed by a
  // fault mitigation) poisons the whole fan-out — a response with a gap
  // in its range would be silently wrong, so the merge answers dropped.
  std::sort(merge.parts.begin(), merge.parts.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  Response merged = serve::response_to(merge.original);
  merged.epoch = epochs_;
  merged.dispatch = kInf;
  bool seen_live = false;
  for (const auto& [shard_ord, part] : merge.parts) {
    (void)shard_ord;
    merged.dispatch = std::min(merged.dispatch, part.dispatch);
    merged.completion = std::max(merged.completion, part.completion);
    if (part.dropped) {
      merged.dropped = true;
      continue;
    }
    // The quiesce barrier and the overlap-mode version fence both
    // guarantee every live piece of a fan-out observed the same epoch —
    // this check is the torn-snapshot tripwire.
    if (!seen_live) {
      seen_live = true;
      merged.epoch = part.epoch;
    }
    HARMONIA_CHECK(part.epoch == merged.epoch);
  }
  if (merged.dropped) {
    merged.range_values.clear();
  } else {
    // Ranges truncate at the scheduler's cap, scans at the request's own
    // (already clamped) scan_n.
    const std::size_t limit = merge.original.kind == RequestKind::kScan
                                  ? merge.original.scan_n
                                  : config_.batch.max_range_results;
    for (const auto& [shard_ord, part] : merge.parts) {
      (void)shard_ord;
      for (Value v : part.range_values) {
        if (merged.range_values.size() >= limit) break;
        merged.range_values.push_back(v);
      }
    }
  }
  const std::size_t parts = merge.parts.size();
  merges_.erase(parent);  // invalidates `merge`
  if (config_.obs.trace != nullptr) {
    config_.obs.trace->stamp(merged.id, obs::Stage::kGatherMerge,
                             merged.completion, obs::TraceRecorder::kNoShard,
                             "parts=" + std::to_string(parts));
  }
  deliver(std::move(merged), source, report);
}

void ShardedServer::handle_dispatch(unsigned s, unsigned r,
                                    BatchScheduler::Dispatch d,
                                    RequestSource& source,
                                    ServerReport& report) {
  rfree(s, r) = d.finish;
  ++report.batches;
  ++report.shard_batches[s];
  ++report.replica_batches[slot(s, r)];
  report.shard_queries[s] += d.batch_size;
  report.batch_size.add(static_cast<double>(d.batch_size));
  report.busy_seconds += d.service_seconds();
  for (Response& resp : d.responses) {
    // A dequeued fan-out piece lowers its shard's version fence (shed or
    // served — either way it no longer pins the shard's snapshot).
    if (resp.id >= kSubIdBase) {
      HARMONIA_CHECK(fence_depth_[s] > 0);
      --fence_depth_[s];
    }
    finish(s, std::move(resp), source, report);
  }
}

double ShardedServer::next_batch_time(double now) const {
  double t_batch = kInf;
  for (unsigned s = 0; s < sched_.size(); ++s) {
    if (sched_[s]->empty()) continue;
    const double trigger =
        sched_[s]->size_ready() ? now : sched_[s]->next_deadline();
    t_batch = std::min(t_batch, std::max(trigger, shard_min_free(s)));
  }
  return t_batch;
}

void ShardedServer::dispatch_ready_batch(double now, RequestSource& source,
                                         ServerReport& report) {
  // Re-derive the earliest shard at `now` (ties break to the lowest id).
  unsigned best = 0;
  double bt = kInf;
  for (unsigned s = 0; s < sched_.size(); ++s) {
    if (sched_[s]->empty()) continue;
    const double trigger =
        sched_[s]->size_ready() ? now : sched_[s]->next_deadline();
    const double t = std::max(trigger, shard_min_free(s));
    if (t < bt) {
      bt = t;
      best = s;
    }
  }
  HARMONIA_CHECK(bt < kInf);
  const unsigned r = groups_[best].pick(group_span(best));
  handle_dispatch(best, r,
                  sched_[best]->dispatch_ready(now, rfree(best, r),
                                               shard_epoch_[best]),
                  source, report);
}

double ShardedServer::next_epoch_time(double now) const {
  if (pending_updates_.empty()) return kNever;
  // A migration owns the staging machinery (and the plan is about to
  // move under the op scatter): updates buffer until the flip.
  if (migration_.has_value()) return kNever;
  // One staging buffer: in the overlapped modes the next epoch cannot
  // start to build (or patch) until every shard has swapped the
  // in-flight one.
  if (config_.epoch.mode != EpochMode::kQuiesce && inflight_.has_value())
    return kNever;
  return pending_updates_.size() >= config_.epoch.max_buffered
             ? now
             : pending_updates_.front().arrival + config_.epoch.max_wait;
}

void ShardedServer::epoch_begin(double now, RequestSource& source,
                                ServerReport& report) {
  if (config_.epoch.mode == EpochMode::kQuiesce) {
    run_epoch(now, source, report);
    return;
  }
  begin_overlap_epoch(now, report);
}

void ShardedServer::run_epoch(double at, RequestSource& source,
                              ServerReport& report) {
  // Quiesce: flush every shard's pending query batches so everything
  // admitted before the trigger is served by pre-epoch trees.
  for (unsigned s = 0; s < sched_.size(); ++s) {
    while (!sched_[s]->empty()) {
      const unsigned r = groups_[s].pick(group_span(s));
      handle_dispatch(
          s, r, sched_[s]->dispatch_ready(at, rfree(s, r), shard_epoch_[s]),
          source, report);
    }
  }

  // Barrier: the epoch starts when the slowest device drains (every
  // replica slot — a lost slot's stale timeline is harmlessly past).
  double start = at;
  for (const double f : replica_free_) start = std::max(start, f);
  for (const double f : replica_free_)
    report.barrier_wait_seconds += start - std::max(at, f);
  if (config_.obs.trace != nullptr) {
    config_.obs.trace->annotate(
        start, obs::TraceRecorder::kNoShard,
        "epoch barrier epoch=" + std::to_string(epochs_ + 1) +
            " updates=" + std::to_string(pending_updates_.size()));
  }

  std::vector<queries::UpdateOp> ops;
  ops.reserve(pending_updates_.size());
  for (const Request& r : pending_updates_) ops.push_back({r.op, r.key, r.value});
  std::vector<char> touched(index_.num_shards(), 0);
  for (const auto& op : ops) touched[index_.plan().shard_of(op.key)] = 1;

  // Write-ahead: each touched shard logs its sub-batch at the barrier,
  // before the apply mutates any in-memory tree — the on-disk log is
  // never behind the committed state.
  if (!durability_.empty()) {
    std::vector<std::vector<queries::UpdateOp>> log_split(index_.num_shards());
    for (const auto& op : ops)
      log_split[index_.plan().shard_of(op.key)].push_back(op);
    for (unsigned s = 0; s < index_.num_shards(); ++s) {
      if (!log_split[s].empty())
        durability_[s]->log_batch(epochs_ + 1, log_split[s], start);
    }
  }

  // Incremental leftovers: each touched shard's update_batch replays its
  // committed overlay ahead of the batch (untouched shards keep theirs).
  // The replays are real CPU work (charged below) but not client ops —
  // back them out of the stats so updates_applied counts each request
  // exactly once (replays never fail: a live entry re-inserts, a
  // tombstone deletes a key still in the base).
  std::uint64_t replay_live = 0;
  std::uint64_t replay_tomb = 0;
  for (unsigned s = 0; s < index_.num_shards(); ++s) {
    if (!touched[s] || index_.shard(s) == nullptr) continue;
    replay_live += index_.shard(s)->overlay_live_count();
    replay_tomb += index_.shard(s)->overlay_tombstone_count();
  }
  UpdateStats stats = index_.update_batch(ops, config_.epoch.apply_threads);
  HARMONIA_CHECK(stats.inserts >= replay_live && stats.deletes >= replay_tomb);
  stats.inserts -= replay_live;
  stats.deletes -= replay_tomb;

  // One host CPU applies the whole epoch; per-shard image resyncs overlap
  // on their own links, so the resync charge is the slowest shard's.
  const double apply_seconds =
      static_cast<double>(ops.size() + replay_live + replay_tomb) *
      config_.epoch.seconds_per_op;
  double resync_seconds = index_.last_resync_seconds();
  if (injector_.active()) {
    // Recompute the resync charge per touched shard so each pays its own
    // slowdown windows, and give armed corruption events their shot at
    // the fresh images — the CRC32 audit catches and re-images before
    // admission reopens, so a corrupt image is never served.
    resync_seconds = 0.0;
    const double resync_at = start + apply_seconds;
    for (unsigned s = 0; s < index_.num_shards(); ++s) {
      if (!touched[s] || index_.shard(s) == nullptr) continue;
      const double factor = injector_.transfer_factor(s, resync_at);
      double rs = factor *
                  image_resync_seconds(index_.shard(s)->tree(), config_.link);
      if (injector_.maybe_corrupt_resync(s, *index_.shard(s), resync_at))
        rs += factor * injector_.audit_and_repair(s, *index_.shard(s),
                                                  config_.link, resync_at);
      resync_seconds = std::max(resync_seconds, rs);
    }
  }
  const double finish_t = start + apply_seconds + resync_seconds;

  ++epochs_;
  ++report.epochs;
  if (epochs_total_ != nullptr) epochs_total_->inc();
  for (unsigned& v : shard_epoch_) v = epochs_;
  // Catch-up ledger: a lost replica rejoining later replays exactly the
  // per-shard op counts recorded here (mirrors the WAL's granularity).
  if (replicas_ > 1) {
    std::vector<std::uint64_t> cnt(index_.num_shards(), 0);
    for (const auto& op : ops) ++cnt[index_.plan().shard_of(op.key)];
    for (unsigned s = 0; s < index_.num_shards(); ++s)
      if (cnt[s] > 0) epoch_ops_[s].emplace_back(epochs_, cnt[s]);
  }
  report.updates_applied += stats.total_ops();
  report.updates_failed += stats.failed;
  report.epoch_build_seconds += apply_seconds;
  report.epoch_upload_seconds += resync_seconds;
  // A quiesce epoch rebuilds and re-uploads full images: by definition a
  // compaction, never a patch (incremental final drains land here too).
  ++report.compaction_epochs;
  report.epoch_compaction_build_seconds += apply_seconds;
  report.epoch_compaction_upload_seconds += resync_seconds;
  // Every device is held through the epoch: admission reopens on all
  // shards at the same instant (the atomicity the stress tests pin).
  // Replicas stall alongside — each holds a full image copy.
  const double stall =
      (finish_t - start) * static_cast<double>(replica_free_.size());
  report.epoch_stall_seconds += stall;
  if (stall_hist_ != nullptr) stall_hist_->observe(stall);
  report.busy_seconds += stall;
  for (double& f : replica_free_) f = finish_t;

  // Snapshot points: a quiesce epoch rebuilt every touched shard's full
  // image, so in delta mode (where these are the rare compactions) each
  // forces a snapshot; otherwise the per-shard cadence decides. Modeled
  // as async background writes — no device time is charged.
  if (!durability_.empty()) {
    const bool force = config_.epoch.mode == EpochMode::kIncremental;
    for (unsigned s = 0; s < index_.num_shards(); ++s) {
      if (touched[s] && index_.shard(s) != nullptr)
        durability_[s]->maybe_snapshot(epochs_, *index_.shard(s), force,
                                       finish_t);
    }
  }

  for (const Request& r : pending_updates_) {
    Response resp = serve::response_to(r);
    resp.epoch = epochs_;
    resp.dispatch = start;
    resp.completion = finish_t;
    if (config_.obs.trace != nullptr) {
      config_.obs.trace->stamp(resp.id, obs::Stage::kDispatch, start,
                               obs::TraceRecorder::kNoShard,
                               "epoch=" + std::to_string(epochs_));
      config_.obs.trace->stamp(resp.id, obs::Stage::kReply, finish_t,
                               obs::TraceRecorder::kNoShard);
    }
    report.makespan = std::max(report.makespan, resp.completion);
    source.on_complete(resp);
    report.responses.push_back(std::move(resp));
  }
  pending_updates_.clear();
  at_fleet_swap_boundary(finish_t);  // a quiesce epoch is a fleet boundary
}

void ShardedServer::stage_with_fold(unsigned s,
                                    std::span<const queries::UpdateOp> ops,
                                    std::size_t absorbed,
                                    const UpdateStats& prefix,
                                    InflightEpoch& ep) {
  HarmoniaIndex& idx = *index_.shard(s);
  ShardStage& st = ep.shards[s];
  ep.patch = false;
  // The shard's committed overlay replays ahead of the unabsorbed tail so
  // the rebuilt image subsumes it (commit_staged clears the overlay).
  // Replays are real build work (charged by the caller via fold.size())
  // but not client ops — back them out of the stats so updates_applied
  // counts each request exactly once (replays never fail: a live entry
  // re-inserts, a tombstone deletes a key still in the base).
  const std::uint64_t replay_live = idx.overlay_live_count();
  const std::uint64_t replay_tomb = idx.overlay_tombstone_count();
  std::vector<queries::UpdateOp> fold = idx.overlay_as_ops();
  fold.insert(fold.end(), ops.begin() + static_cast<std::ptrdiff_t>(absorbed),
              ops.end());
  idx.discard_patch();
  st.update = idx.stage_update(fold, config_.epoch.apply_threads);
  HARMONIA_CHECK(st.update.stats.inserts >= replay_live &&
                 st.update.stats.deletes >= replay_tomb);
  st.update.stats.inserts -= replay_live;
  st.update.stats.deletes -= replay_tomb;
  st.update.stats.updates += prefix.updates;
  st.update.stats.inserts += prefix.inserts;
  st.update.stats.deletes += prefix.deletes;
  st.update.stats.failed += prefix.failed;
  accumulate(ep.stats, st.update.stats);
  ep.build_seconds +=
      static_cast<double>(fold.size()) * config_.epoch.seconds_per_op;
}

void ShardedServer::begin_overlap_epoch(double now, ServerReport& report) {
  (void)report;
  const unsigned n = index_.num_shards();
  const bool incremental = config_.epoch.mode == EpochMode::kIncremental;
  InflightEpoch ep;
  ep.ordinal = epochs_ + 1;
  ep.trigger = now;
  ep.requests = std::move(pending_updates_);
  pending_updates_.clear();

  // Scatter preserving arrival order within each shard: ops commute
  // across shards (disjoint key ranges) but not within one.
  std::vector<std::vector<queries::UpdateOp>> per_shard(n);
  for (const Request& r : ep.requests)
    per_shard[index_.plan().shard_of(r.key)].push_back({r.op, r.key, r.value});

  // Write-ahead: each touched shard logs its sub-batch at the trigger,
  // before any patch or shadow build mutates in-memory state.
  if (!durability_.empty()) {
    for (unsigned s = 0; s < n; ++s) {
      if (!per_shard[s].empty())
        durability_[s]->log_batch(ep.ordinal, per_shard[s], now);
    }
  }

  ep.shards.resize(n);
  ep.remaining = n;
  ep.patch = true;  // stage_with_fold clears it on any shadow build

  // One host CPU works the touched shards back to back (the build charge
  // sums), then the touched images upload concurrently over their own
  // links. In incremental mode the per-shard cost depends on the path it
  // took: in-place patch ops are much cheaper than an Algorithm-1 shadow
  // build, and a shard that exhausts its gaps/overlay pays its absorbed
  // patch prefix plus the fold-compaction build.
  for (unsigned s = 0; s < n; ++s) {
    if (per_shard[s].empty()) continue;
    ShardStage& st = ep.shards[s];
    st.staged = true;
    st.ops = static_cast<std::uint64_t>(per_shard[s].size());
    if (incremental && !fenced_[s]) {
      const auto pr = index_.shard(s)->patch_update(per_shard[s]);
      if (!pr.exhausted) {
        st.patched = true;
        st.patch_bytes = pr.patch_bytes;
        accumulate(ep.stats, pr.stats);
        ep.build_seconds += static_cast<double>(per_shard[s].size()) *
                            config_.epoch.seconds_per_patch_op;
        continue;
      }
      // This shard's gaps/overlay are exhausted: compaction fallback.
      ep.build_seconds += static_cast<double>(pr.absorbed) *
                          config_.epoch.seconds_per_patch_op;
      stage_with_fold(s, per_shard[s], pr.absorbed, pr.stats, ep);
      continue;
    }
    // Plain staged build: overlap mode, or a fenced shard (its device is
    // gone — no image to patch; the host-side rebuild still folds any
    // committed overlay, which is empty outside incremental mode).
    stage_with_fold(s, per_shard[s], 0, UpdateStats{}, ep);
  }
  ep.build_done = now + ep.build_seconds;

  if (config_.obs.trace != nullptr)
    config_.obs.trace->annotate(
        now, obs::TraceRecorder::kNoShard,
        "epoch build start epoch=" + std::to_string(ep.ordinal) +
            " ops=" + std::to_string(ep.requests.size()) +
            (ep.patch ? " patch" : ""));
  for (unsigned s = 0; s < n; ++s) {
    ShardStage& st = ep.shards[s];
    if (!st.staged) {
      // Untouched shard: nothing to upload — it swaps (a version bump)
      // as soon as the build finishes and its fence is clear.
      st.ready = ep.build_done;
      continue;
    }
    double upload = st.patched
                        ? config_.link.seconds(st.patch_bytes)
                        : image_resync_seconds(st.update.tree(), config_.link);
    if (injector_.active()) {
      upload *= injector_.transfer_factor(s, ep.build_done + upload);
      // The staged image (or patch burst) is audited (CRC32) before it
      // may commit; a hit re-uploads while the old image keeps serving.
      upload += injector_.audit_staged(s, upload, ep.build_done + upload);
    }
    st.upload_seconds = upload;
    st.ready = ep.build_done + upload;
    if (config_.obs.trace != nullptr) {
      const std::string tag = "epoch=" + std::to_string(ep.ordinal) +
                              (st.patched ? " patch" : "");
      config_.obs.trace->annotate(ep.build_done, s, "epoch upload start " + tag);
      config_.obs.trace->annotate(st.ready, s, "epoch staged ready " + tag);
    }
  }
  inflight_ = std::move(ep);
}

double ShardedServer::swap_time_for(unsigned s) const {
  const ShardStage& st = inflight_->shards[s];
  // A fenced (lost) shard is not serving: its host-side swap needs no
  // batch boundary. A live shard swaps when its whole replica group is
  // between batches (the staged image ships to every member; a lost
  // member never holds the swap — catch-up covers it on rejoin).
  return fenced_[s] ? st.ready : std::max(st.ready, group_free(s));
}

double ShardedServer::next_swap_time() const {
  if (migration_.has_value()) return migration_swap_time();
  if (!inflight_.has_value()) return kNever;
  double t = kNever;
  for (unsigned s = 0; s < inflight_->shards.size(); ++s) {
    if (inflight_->shards[s].swapped) continue;
    if (fence_depth_[s] > 0) continue;  // fan-out pieces pin the snapshot
    t = std::min(t, swap_time_for(s));
  }
  return t;
}

void ShardedServer::epoch_commit(double now, RequestSource& source,
                                 ServerReport& report) {
  // A due migration flip arrives through the same swap hook (migrations
  // and staged epochs are mutually exclusive, so no ambiguity).
  if (migration_.has_value()) {
    commit_migration(now, source, report);
    return;
  }
  HARMONIA_CHECK(inflight_.has_value());
  // The due shard: earliest swap time among unswapped, unfenced shards
  // (ties break to the lowest id — deterministic stagger order).
  unsigned best = 0;
  double bt = kInf;
  for (unsigned s = 0; s < inflight_->shards.size(); ++s) {
    if (inflight_->shards[s].swapped || fence_depth_[s] > 0) continue;
    const double t = swap_time_for(s);
    if (t < bt) {
      bt = t;
      best = s;
    }
  }
  HARMONIA_CHECK(bt < kInf);
  ShardStage& st = inflight_->shards[best];
  if (st.staged) {
    // Patched shards flush their queued leaf/overlay writes into the live
    // image; compacted shards swap in the shadow tree. Either way the
    // change lands whole at this batch boundary.
    if (st.patched)
      index_.shard(best)->commit_patch();
    else
      index_.shard(best)->commit_staged(std::move(st.update));
  }
  st.swapped = true;
  shard_epoch_[best] = inflight_->ordinal;
  if (replicas_ > 1 && st.ops > 0)
    epoch_ops_[best].emplace_back(inflight_->ordinal, st.ops);
  if (!durability_.empty() && st.staged) {
    // Snapshot point after this shard's swap. A delta-mode compaction
    // forces one (the shard's image was just rebuilt — the natural
    // snapshot); patch commits and plain overlap swaps follow the
    // per-shard cadence. Async background write: no device time charged.
    const bool force =
        config_.epoch.mode == EpochMode::kIncremental && !st.patched;
    durability_[best]->maybe_snapshot(inflight_->ordinal, *index_.shard(best),
                                      force, now);
  }
  const double wait = now - st.ready;
  report.epoch_swap_wait_seconds += wait;
  if (swap_wait_hist_ != nullptr) swap_wait_hist_->observe(wait);
  if (config_.obs.trace != nullptr)
    config_.obs.trace->annotate(now, best,
                                "epoch swap epoch=" +
                                    std::to_string(inflight_->ordinal) +
                                    (st.patched ? " patch" : ""));
  HARMONIA_CHECK(inflight_->remaining > 0);
  if (--inflight_->remaining == 0) finish_overlap_epoch(now, source, report);
}

void ShardedServer::finish_overlap_epoch(double now, RequestSource& source,
                                         ServerReport& report) {
  InflightEpoch ep = std::move(*inflight_);
  inflight_.reset();
  ++epochs_;
  HARMONIA_CHECK(epochs_ == ep.ordinal);
  ++report.epochs;
  if (epochs_total_ != nullptr) epochs_total_->inc();
  report.updates_applied += ep.stats.total_ops();
  report.updates_failed += ep.stats.failed;
  report.epoch_build_seconds += ep.build_seconds;
  // Touched images upload concurrently: the wall charge is the slowest.
  double upload_max = 0.0;
  for (const ShardStage& st : ep.shards)
    upload_max = std::max(upload_max, st.upload_seconds);
  report.epoch_upload_seconds += upload_max;
  // An epoch books as "patch" only when every staged shard patched in
  // place; one compacting shard dominates the cost, so it tips the whole
  // epoch into the compaction bucket.
  if (ep.patch) {
    ++report.patch_epochs;
    report.epoch_patch_build_seconds += ep.build_seconds;
    report.epoch_patch_upload_seconds += upload_max;
  } else {
    ++report.compaction_epochs;
    report.epoch_compaction_build_seconds += ep.build_seconds;
    report.epoch_compaction_upload_seconds += upload_max;
  }

  // The update requests complete at the last shard swap: only then is the
  // epoch observable everywhere.
  for (const Request& r : ep.requests) {
    Response resp = serve::response_to(r);
    resp.epoch = epochs_;
    resp.dispatch = ep.trigger;
    resp.completion = now;
    if (config_.obs.trace != nullptr) {
      config_.obs.trace->stamp(resp.id, obs::Stage::kDispatch, ep.trigger,
                               obs::TraceRecorder::kNoShard,
                               "epoch=" + std::to_string(epochs_) + " staged");
      config_.obs.trace->stamp(resp.id, obs::Stage::kReply, now,
                               obs::TraceRecorder::kNoShard);
    }
    report.makespan = std::max(report.makespan, resp.completion);
    source.on_complete(resp);
    report.responses.push_back(std::move(resp));
  }

  // Versions are uniform again: install any latched tunables snapshot
  // before new work is admitted, then re-admit the straddlers that
  // arrived mid-window (original arrival kept, so their deadlines are
  // already urgent).
  at_fleet_swap_boundary(now);
  std::vector<Request> parked = std::move(parked_);
  parked_.clear();
  for (const Request& r : parked) admit_query(r, now, source, report);
}

void ShardedServer::fence_shard(unsigned s, unsigned replica, double now,
                                double repair, RequestSource& source,
                                ServerReport& report) {
  fenced_[s] = 1;
  fence_start_[s] = now;
  restore_at_[s] = now + repair;
  groups_[s].lose(replica, shard_epoch_[s]);
  lost_plan_[slot(s, replica)] = plan_version_;
  fence_replica_[s] = replica;
  cpu_free_[s] = std::max(cpu_free_[s], now);
  // The device's in-flight admission queue dies with it. The queued
  // requests are not lost, though: re-route them through the degraded
  // path in arrival order (the CPU backlog bound sheds the excess).
  for (const Request& r : sched_[s]->evict_all()) {
    if (r.id >= kSubIdBase) {
      HARMONIA_CHECK(fence_depth_[s] > 0);
      --fence_depth_[s];
    }
    finish(s, degraded_serve(s, r, now), source, report);
  }
}

double ShardedServer::next_fault_time() const {
  return injector_.active() ? injector_.next_shard_lost_time() : kNever;
}

void ShardedServer::handle_fault(double now, RequestSource& source,
                                 ServerReport& report) {
  const auto ev = injector_.take_shard_lost(now);
  HARMONIA_CHECK(ev.has_value());
  const unsigned s = ev->shard;
  const unsigned r = ev->replica;
  HARMONIA_CHECK_MSG(!fenced_[s],
                     "shard " << s << " lost twice without a restore between");
  ReplicaGroup& g = groups_[s];
  fault::FaultReport& rep = injector_.report();

  // Failover: survivors keep serving the whole range from the device
  // path — no fence, no degraded queries. The tallies are outcome-based
  // (shards_lost counts whole-shard fences, replicas_lost the losses a
  // group absorbed), so a `lose` absorbed by K > 1 reclassifies.
  if (g.healthy_count() > 1 || !g.is_healthy(r)) {
    if (ev->kind == fault::FaultKind::kShardLost) {
      HARMONIA_CHECK(rep.shards_lost > 0);
      --rep.shards_lost;
      ++rep.replicas_lost;
    }
    if (!g.is_healthy(r)) {
      // The slot is already down: the new hit extends its outage.
      rejoin_at_[slot(s, r)] =
          std::max(rejoin_at_[slot(s, r)], now + ev->duration);
      if (config_.obs.trace != nullptr)
        config_.obs.trace->annotate(
            now, s, "replica outage extended slot=" + std::to_string(r));
      return;
    }
    g.lose(r, shard_epoch_[s]);
    lost_plan_[slot(s, r)] = plan_version_;
    rejoin_at_[slot(s, r)] = now + ev->duration;
    if (config_.obs.trace != nullptr)
      config_.obs.trace->annotate(
          now, s,
          "replica failover slot=" + std::to_string(r) +
              " survivors=" + std::to_string(g.healthy_count()));
    return;
  }

  // Last healthy member: the whole-shard fence + degraded serving (the
  // only path at K = 1). A replica-lost event that lands here is in
  // outcome a shard loss — reclassify the other way.
  if (ev->kind == fault::FaultKind::kReplicaLost) {
    HARMONIA_CHECK(rep.replicas_lost > 0);
    --rep.replicas_lost;
    ++rep.shards_lost;
  }
  fence_shard(s, r, now, ev->duration, source, report);
}

void ShardedServer::restore_shard(double now, ServerReport& report) {
  unsigned s = 0;
  for (unsigned i = 1; i < restore_at_.size(); ++i)
    if (restore_at_[i] < restore_at_[s]) s = i;
  HARMONIA_CHECK(restore_at_[s] < kInf && fenced_[s]);
  restore_at_[s] = kInf;

  // The replacement device comes up empty: re-image it from the host
  // tree (the source of truth), audit the fresh image, and rejoin. The
  // re-image transfer pays any slowdown window live on this shard's link.
  fault::FaultReport& rep = injector_.report();
  HarmoniaIndex& idx = *index_.shard(s);
  idx.resync_device();
  ++rep.audits;
  HARMONIA_CHECK_MSG(fault::verify_image(idx), "restored image failed audit");
  ++rep.reimages;
  const double reimage = injector_.transfer_factor(s, now) *
                         image_resync_seconds(idx.tree(), config_.link);
  rep.reimage_seconds += reimage;
  groups_[s].rejoin(fence_replica_[s]);
  double& f = rfree(s, fence_replica_[s]);
  f = std::max(f, now + reimage);
  report.busy_seconds += reimage;

  fenced_[s] = 0;
  ++rep.shards_restored;
  rep.fenced_seconds += now - fence_start_[s];
  if (config_.obs.active()) {
    if (config_.obs.metrics != nullptr)
      config_.obs.metrics->counter("fault_shards_restored_total").inc();
    if (config_.obs.trace != nullptr)
      config_.obs.trace->annotate(now, s, "shard restored: re-imaged and rejoined");
  }
}

double ShardedServer::next_restore_time() const {
  double t = kInf;
  for (const double r : restore_at_) t = std::min(t, r);
  for (const double r : rejoin_at_) t = std::min(t, r);
  return t;
}

void ShardedServer::handle_restore(double now, ServerReport& report) {
  double tr = kInf;
  for (const double t : restore_at_) tr = std::min(tr, t);
  double tj = kInf;
  for (const double t : rejoin_at_) tj = std::min(tj, t);
  // Fence restores win ties: a rejoin deferred behind its shard's fence
  // re-arms at the restore instant and must run second.
  if (tr <= tj)
    restore_shard(now, report);
  else
    rejoin_replica(now, report);
}

void ShardedServer::rejoin_replica(double now, ServerReport& report) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < rejoin_at_.size(); ++i)
    if (rejoin_at_[i] < rejoin_at_[best]) best = i;
  HARMONIA_CHECK(rejoin_at_[best] < kInf);
  const unsigned s = static_cast<unsigned>(best / replicas_);
  const unsigned r = static_cast<unsigned>(best % replicas_);
  ReplicaGroup& g = groups_[s];
  HARMONIA_CHECK(!g.is_healthy(r));
  if (fenced_[s]) {
    // A fenced shard's earlier casualties cannot rejoin a group whose
    // range is serving degraded: defer to the shard's own restore (the
    // tie-break above runs the restore first).
    rejoin_at_[best] = restore_at_[s];
    return;
  }
  rejoin_at_[best] = kInf;

  fault::FaultReport& rep = injector_.report();
  std::uint64_t ops = 0;
  std::uint64_t batches = 0;
  double catchup = 0.0;
  const bool reshaped = lost_plan_[best] != plan_version_;
  if (reshaped) {
    // The plan moved while the slot was down; the boundary migration
    // never reaches the update log, so log-shipping cannot converge —
    // pull a full image instead.
    ++rep.reimages;
    catchup = injector_.transfer_factor(s, now) *
              image_resync_seconds(index_.shard(s)->tree(), config_.link);
  } else {
    // Log-shipped catch-up: replay the group's update-log tail (epochs
    // after the one this slot last applied). With a durability domain
    // the tail comes off the real on-disk log; otherwise the in-memory
    // ledger stands in with the same per-epoch op counts.
    const std::uint64_t after = g.lost_epoch(r);
    if (!durability_.empty()) {
      const persist::LogReplay tail = durability_[s]->tail_since(after);
      batches = tail.batches.size();
      ops = tail.ops;
    } else {
      for (const auto& [epoch, count] : epoch_ops_[s]) {
        if (epoch > after) {
          ++batches;
          ops += count;
        }
      }
    }
    // Ship cost: framed log bytes over the shard's link, then the
    // replica applies the ops at the epoch updater's per-op rate.
    const std::uint64_t bytes = batches * persist::UpdateLog::kRecordFixedBytes +
                                ops * persist::UpdateLog::kOpBytes;
    catchup = static_cast<double>(ops) * config_.epoch.seconds_per_op;
    if (ops > 0) catchup += config_.link.seconds(bytes);
  }
  g.rejoin(r);
  rfree(s, r) = now + catchup;
  ++rep.replicas_rejoined;
  rep.catchup_ops += ops;
  rep.catchup_seconds += catchup;
  report.busy_seconds += catchup;
  if (config_.obs.active()) {
    if (config_.obs.metrics != nullptr)
      config_.obs.metrics->counter("fault_replicas_rejoined_total").inc();
    if (config_.obs.trace != nullptr)
      config_.obs.trace->annotate(
          now, s,
          "replica rejoined slot=" + std::to_string(r) +
              (reshaped ? " via re-image (plan moved)"
                        : " catchup_ops=" + std::to_string(ops)));
  }
}

serve::Response ShardedServer::degraded_serve(unsigned s, const Request& r,
                                              double now) {
  const fault::DegradedPolicy& pol = injector_.mitigation().degraded;
  fault::FaultReport& rep = injector_.report();
  Response resp = serve::response_to(r);
  resp.epoch = shard_epoch_[s];

  // Admission shedding for the affected range only: once the CPU oracle
  // is this far behind, answering dropped beats unbounded latency.
  if (degraded_total_ != nullptr) degraded_total_->inc();
  if (std::max(cpu_free_[s], now) - now > pol.max_backlog) {
    ++rep.degraded_shed;
    resp.dropped = true;
    resp.dispatch = resp.completion = now;
    if (config_.obs.trace != nullptr)
      config_.obs.trace->stamp(r.id, obs::Stage::kDispatch, now, s,
                               "degraded shed: cpu backlog full");
    return resp;
  }

  double cost = 0.0;
  if (r.kind == RequestKind::kPoint) {
    ++rep.degraded_points;
    if (const auto v = index_.shard(s)->search_host(r.key)) resp.value = *v;
    cost = pol.seconds_per_point;
  } else {
    // Ranges and scans both walk the host tree; a scan piece reads this
    // shard's tail from its clamped lower bound up to its scan_n.
    ++rep.degraded_ranges;
    const auto entries =
        r.kind == RequestKind::kScan
            ? index_.shard(s)->scan_host(std::max(r.key, index_.plan().lo(s)),
                                         r.scan_n)
            : index_.shard(s)->range_host(std::max(r.key, index_.plan().lo(s)),
                                          std::min(r.hi, index_.plan().hi(s)),
                                          config_.batch.max_range_results);
    resp.range_values.reserve(entries.size());
    for (const auto& e : entries) resp.range_values.push_back(e.value);
    cost = pol.seconds_per_range +
           static_cast<double>(entries.size()) * pol.seconds_per_result;
  }
  const double begin = std::max(cpu_free_[s], now);
  cpu_free_[s] = begin + cost;
  rep.degraded_seconds += cost;
  resp.dispatch = begin;
  resp.completion = cpu_free_[s];
  if (config_.obs.trace != nullptr)
    config_.obs.trace->stamp(r.id, obs::Stage::kDispatch, begin, s, "degraded");
  return resp;
}

void ShardedServer::maybe_start_migration(double now) {
  if (!config_.reshard.split_hot) return;
  if (now < next_detect_) return;
  next_detect_ = now + config_.reshard.detect_every;

  // Sample and reset the window on every cadence tick (even when a
  // trigger is impossible right now, so hotness never accumulates
  // stale history across a migration).
  const unsigned n = index_.num_shards();
  std::vector<std::uint64_t> window(n);
  for (unsigned s = 0; s < n; ++s)
    window[s] = window_routed_[s] + sched_[s]->depth();
  std::fill(window_routed_.begin(), window_routed_.end(), 0);

  if (migration_.has_value() || inflight_.has_value()) return;
  if (migrations_done_ >= config_.reshard.max_migrations) return;

  unsigned h = 0;
  std::uint64_t total = 0;
  for (unsigned s = 0; s < n; ++s) {
    total += window[s];
    if (window[s] > window[h]) h = s;
  }
  if (window[h] < config_.reshard.min_window_queries) return;
  const double mean = static_cast<double>(total) / static_cast<double>(n);
  if (static_cast<double>(window[h]) <= config_.reshard.hot_factor * mean)
    return;
  // The colder adjacent neighbor takes the ceded half (boundaries only
  // move between adjacent shards — ranges stay contiguous).
  const unsigned recv = h == 0         ? 1u
                        : h == n - 1   ? n - 2
                        : window[h - 1] <= window[h + 1] ? h - 1
                                                         : h + 1;
  if (fenced_[h] || fenced_[recv]) return;
  // Both groups must be whole: a staged commit installed while a member
  // is down would strand that member on the pre-split image with no log
  // record to replay (the rejoin would full-re-image instead — legal,
  // but starting the split while degraded is not worth it).
  if (groups_[h].healthy_count() < replicas_ ||
      groups_[recv].healthy_count() < replicas_)
    return;
  start_migration(h, recv, now);
}

void ShardedServer::start_migration(unsigned donor, unsigned receiver,
                                    double now) {
  HarmoniaIndex& didx = *index_.shard(donor);
  HarmoniaIndex& ridx = *index_.shard(receiver);
  // Delta-mode overlays complicate the moved-key set (overlay entries
  // in the ceded range would survive in the donor's rebuilt image):
  // defer the split until the overlays compact.
  if (didx.overlay_live_count() + didx.overlay_tombstone_count() +
          ridx.overlay_live_count() + ridx.overlay_tombstone_count() >
      0)
    return;
  const std::uint64_t keys = didx.tree().num_keys();
  if (keys < 2) return;

  InflightMigration m;
  m.donor = donor;
  m.receiver = receiver;
  m.trigger = now;

  // Cut the hot range at its median key and hand the half adjacent to
  // the receiver across the boundary.
  const auto entries =
      index_.range_host(index_.plan().lo(donor), index_.plan().hi(donor));
  HARMONIA_CHECK(entries.size() == keys);
  const std::size_t mid = entries.size() / 2;
  const Key split_key = entries[mid].key;
  const std::span<const Key> bounds = index_.plan().lower_bounds();
  m.new_lo.assign(bounds.begin(), bounds.end());
  std::span<const btree::Entry> moved;
  if (receiver > donor) {
    moved = std::span<const btree::Entry>(entries).subspan(mid);
    m.new_lo[receiver] = split_key;
  } else {
    moved = std::span<const btree::Entry>(entries).subspan(0, mid);
    m.new_lo[donor] = split_key;
  }
  m.moved_keys = moved.size();

  // Stage both post-split images through the same double-buffered
  // machinery as overlap epochs: the old plan keeps serving off the
  // committed images until the flip. Migration ops are bookkeeping, not
  // client updates — their stats never reach updates_applied.
  std::vector<queries::UpdateOp> del;
  std::vector<queries::UpdateOp> ins;
  del.reserve(moved.size());
  ins.reserve(moved.size());
  for (const btree::Entry& e : moved) {
    del.push_back({queries::OpKind::kDelete, e.key, 0});
    ins.push_back({queries::OpKind::kInsert, e.key, e.value});
  }
  const auto stage_side = [&](HarmoniaIndex& idx,
                              std::span<const queries::UpdateOp> ops,
                              ShardStage& st) {
    idx.discard_patch();
    st.staged = true;
    st.update = idx.stage_update(ops, config_.epoch.apply_threads);
    m.build_seconds +=
        static_cast<double>(ops.size()) * config_.epoch.seconds_per_op;
  };
  stage_side(didx, del, m.donor_stage);
  stage_side(ridx, ins, m.receiver_stage);
  m.build_done = now + m.build_seconds;

  // The two fresh images upload concurrently over their own links.
  const auto upload_side = [&](unsigned s, ShardStage& st) {
    double up = image_resync_seconds(st.update.tree(), config_.link);
    if (injector_.active()) {
      up *= injector_.transfer_factor(s, m.build_done + up);
      up += injector_.audit_staged(s, up, m.build_done + up);
    }
    st.upload_seconds = up;
    st.ready = m.build_done + up;
  };
  upload_side(donor, m.donor_stage);
  upload_side(receiver, m.receiver_stage);

  if (config_.obs.trace != nullptr)
    config_.obs.trace->annotate(
        now, donor,
        "reshard start: hot shard cedes " + std::to_string(m.moved_keys) +
            " keys to shard " + std::to_string(receiver) + " at key " +
            std::to_string(split_key));
  migration_ = std::move(m);
}

bool ShardedServer::migration_swap_pending(double now) const {
  return migration_.has_value() && migration_->donor_stage.ready <= now &&
         migration_->receiver_stage.ready <= now;
}

bool ShardedServer::touches_migration(const serve::Request& r) const {
  const unsigned a = std::min(migration_->donor, migration_->receiver);
  const unsigned b = std::max(migration_->donor, migration_->receiver);
  unsigned s0 = index_.plan().shard_of(r.key);
  unsigned s1 = s0;
  if (r.kind == RequestKind::kRange)
    s1 = index_.plan().shard_of(r.hi);
  else if (r.kind == RequestKind::kScan)
    s1 = index_.scan_end_shard(r.key, clamped_scan_n(r));
  return s0 <= b && s1 >= a;
}

double ShardedServer::migration_swap_time() const {
  if (!migration_.has_value()) return kNever;
  const unsigned d = migration_->donor;
  const unsigned v = migration_->receiver;
  // The flip needs both shards fully drained: empty queues, no fan-out
  // pieces pinning a snapshot, groups idle between batches. New work
  // touching the pair parks once the staged sides are ready, so the
  // drain converges.
  if (!sched_[d]->empty() || !sched_[v]->empty()) return kNever;
  if (fence_depth_[d] > 0 || fence_depth_[v] > 0) return kNever;
  double t = std::max(migration_->donor_stage.ready,
                      migration_->receiver_stage.ready);
  t = std::max(t, group_free(d));
  t = std::max(t, group_free(v));
  return t;
}

void ShardedServer::commit_migration(double now, RequestSource& source,
                                     ServerReport& report) {
  HARMONIA_CHECK(migration_.has_value());
  InflightMigration m = std::move(*migration_);
  migration_.reset();
  HARMONIA_CHECK(sched_[m.donor]->empty() && sched_[m.receiver]->empty());
  HARMONIA_CHECK(fence_depth_[m.donor] == 0 && fence_depth_[m.receiver] == 0);

  // The atomic flip: both post-split images install and the plan moves
  // in one event — no instant exists where routing and images disagree.
  index_.shard(m.donor)->commit_staged(std::move(m.donor_stage.update));
  index_.shard(m.receiver)->commit_staged(std::move(m.receiver_stage.update));
  index_.set_plan(ShardPlan::from_bounds(m.new_lo));
  ++plan_version_;
  ++migrations_done_;

  ++report.migrations;
  report.migrated_keys += m.moved_keys;
  report.migration_build_seconds += m.build_seconds;
  report.migration_upload_seconds +=
      std::max(m.donor_stage.upload_seconds, m.receiver_stage.upload_seconds);
  report.plan_version = plan_version_;

  // The moved keys now live in the receiver's durability domain: force a
  // snapshot of both sides so a crash after the flip recovers the new
  // placement instead of replaying ops against the old one.
  if (!durability_.empty()) {
    durability_[m.donor]->maybe_snapshot(epochs_, *index_.shard(m.donor),
                                         /*force=*/true, now);
    durability_[m.receiver]->maybe_snapshot(epochs_, *index_.shard(m.receiver),
                                            /*force=*/true, now);
  }

  if (config_.obs.active()) {
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->counter("reshard_migrations_total").inc();
      config_.obs.metrics->gauge("shard_plan_version")
          .set(static_cast<double>(plan_version_));
    }
    if (config_.obs.trace != nullptr)
      config_.obs.trace->annotate(
          now, m.donor,
          "reshard commit: moved " + std::to_string(m.moved_keys) +
              " keys to shard " + std::to_string(m.receiver) +
              " plan_version=" + std::to_string(plan_version_));
  }

  // Routing is consistent again: install any latched tunables snapshot,
  // then re-admit the parked requests under the new plan (original
  // arrivals kept, so their deadlines stay urgent).
  at_fleet_swap_boundary(now);
  std::vector<Request> parked = std::move(parked_);
  parked_.clear();
  for (const Request& r : parked) admit_query(r, now, source, report);
}

void ShardedServer::final_drain(double now, RequestSource& source,
                                ServerReport& report) {
  // Pending restores and replica rejoins complete first (lose events not
  // yet fired are inert past stream end).
  while (next_restore_time() < kInf) {
    now = std::max(now, next_restore_time());
    handle_restore(now, report);
  }
  while (true) {
    for (unsigned s = 0; s < sched_.size(); ++s) {
      while (!sched_[s]->empty()) {
        const unsigned r = groups_[s].pick(group_span(s));
        handle_dispatch(s, r,
                        sched_[s]->dispatch_ready(std::max(now, rfree(s, r)),
                                                  rfree(s, r),
                                                  shard_epoch_[s]),
                        source, report);
      }
    }
    if (migration_.has_value()) {
      // Queues drained and fences clear: the flip is unconditionally due
      // (its swap time is finite now). The re-admitted parked requests
      // refill the schedulers — hence the outer loop.
      const double t = migration_swap_time();
      HARMONIA_CHECK(t < kNever);
      now = std::max(now, t);
      commit_migration(now, source, report);
      continue;
    }
    if (inflight_.has_value()) {
      // Queues are drained, so every fence is clear: take the remaining
      // staggered swaps in order. The last one re-admits any parked
      // straddlers, which refill the schedulers — hence the outer loop.
      const double t = next_swap_time();
      HARMONIA_CHECK(t < kNever);
      now = std::max(now, t);
      epoch_commit(now, source, report);
      continue;
    }
    break;
  }
  // Leftover updates at stream end: nothing is left to overlap with, so
  // both modes close out with a quiesce-style final epoch.
  if (!pending_updates_.empty()) run_epoch(now, source, report);
}

std::pair<unsigned, unsigned> ShardedServer::effective_query_knobs() const {
  return {sched_[0]->group_size(), sched_[0]->sort_bits()};
}

void ShardedServer::install_query_knobs(const serve::Tunables& t) {
  for (auto& sched : sched_) sched->set_query_knobs(t.group_size, t.sort_bits);
}

void ShardedServer::install_tunables(const serve::Tunables& t, double now) {
  t.validate(config_);
  // Scheduler knobs install between dispatches on every shard — each
  // shard's formed batches are immutable, so this is always safe.
  for (auto& sched : sched_) sched->set_batch_knobs(t.max_batch, t.max_wait);
  // The sharded epoch paths read config_.epoch.apply_threads directly;
  // in-flight staged builds already computed their cost, so the change
  // affects only epochs triggered afterwards.
  config_.epoch.apply_threads = t.apply_threads;
  if (inflight_.has_value() || migration_.has_value()) {
    // Fenced latch: shards swap staggered inside an epoch (and a
    // migration rebuilds two shards), so installing image/PSA knobs now
    // would let replicas and straddling fan-outs observe mixed values.
    // They land at the fleet-wide boundary instead.
    pending_query_ = t;
  } else {
    pending_query_.reset();
    install_query_knobs(t);
  }
  (void)now;
}

void ShardedServer::at_fleet_swap_boundary(double now) {
  if (pending_query_.has_value()) {
    install_query_knobs(*pending_query_);
    pending_query_.reset();
  }
  if (tuner() != nullptr && index_.shard(0) != nullptr) {
    const auto rec = index_.shard(0)->recommend_query_knobs();
    tuner()->observe_profile(now, rec.group_size, rec.sort_bits);
  }
}

void ShardedServer::finish_run(ServerReport& report) {
  HARMONIA_CHECK(merges_.empty());  // every fan-out reassembled
  HARMONIA_CHECK(!inflight_.has_value());
  HARMONIA_CHECK(!migration_.has_value());
  HARMONIA_CHECK(parked_.empty());
  report.plan_version = plan_version_;
  report.faults = injector_.report();
  for (persist::ShardDurability* d : durability_) {
    report.log_batches += d->log_batches();
    report.snapshots_written += d->snapshots_written();
  }
  if (!durability_.empty() && config_.obs.metrics != nullptr) {
    config_.obs.metrics->gauge("persist_log_batches")
        .set(static_cast<double>(report.log_batches));
    config_.obs.metrics->gauge("persist_snapshots_written")
        .set(static_cast<double>(report.snapshots_written));
  }
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->gauge("serve_makespan_seconds").set(report.makespan);
    config_.obs.metrics->gauge("serve_busy_seconds").set(report.busy_seconds);
  }
}

}  // namespace harmonia::shard
