#include "shard/restart_harness.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "common/expect.hpp"

namespace harmonia::shard {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

RestartReport run_with_restarts(const TopologySpec& topo,
                                const serve::ServeOptions& options,
                                std::span<const serve::Request> stream) {
  HARMONIA_CHECK_MSG(options.persist.enabled(),
                     "restart harness needs persistence (set persist.dir): "
                     "there is nothing to recover from otherwise");

  // Split the plan: restart events drive the harness, everything else
  // rides along inside the generation whose window covers it.
  std::vector<fault::FaultEvent> restarts;
  std::vector<fault::FaultEvent> inner;
  for (const fault::FaultEvent& e : options.faults.events) {
    (e.kind == fault::FaultKind::kProcessRestart ? restarts : inner)
        .push_back(e);
  }
  HARMONIA_CHECK_MSG(!restarts.empty(),
                     "restart harness: the fault plan holds no restart events");

  RestartReport out;
  out.cycles.reserve(restarts.size());
  std::size_t cursor = 0;
  double resume = 0.0;  // earliest admit instant for this generation
  for (std::size_t g = 0; g <= restarts.size(); ++g) {
    const bool final_gen = g == restarts.size();
    const double gen_start = g == 0 ? 0.0 : restarts[g - 1].at;
    const double crash = final_gen ? kInf : restarts[g].at;
    HARMONIA_CHECK_MSG(crash > gen_start || final_gen,
                       "restart events must be strictly increasing in time");

    serve::ServeOptions gen = options;
    gen.faults.events.clear();
    for (const fault::FaultEvent& e : inner) {
      if (e.at >= gen_start && e.at < crash) gen.faults.events.push_back(e);
    }
    // Generation 0 starts however the caller asked (usually a bulk
    // build); every later generation cold-starts from the crash's disk.
    gen.persist.recover = g > 0 || options.persist.recover;

    ServingStack stack(topo, gen);
    if (g > 0) {
      // The stack just recovered: close out the cycle the crash opened.
      RestartCycle& cycle = out.cycles.back();
      cycle.recoveries = stack.recoveries();
      for (const persist::RecoveryReport& r : cycle.recoveries) {
        cycle.recovery_seconds =
            std::max(cycle.recovery_seconds, r.modeled_seconds);
      }
      cycle.resume_time =
          cycle.crash_time + cycle.down_seconds + cycle.recovery_seconds;
      resume = cycle.resume_time;
    }
    if (!final_gen) stack.durability()->set_crash_time(crash);

    // This generation's slice: everything arriving before the crash,
    // with arrivals during the down+recovery window deferred to the
    // instant the process came back (they queued at the front door).
    std::vector<serve::Request> seg;
    for (; cursor < stream.size() && stream[cursor].arrival < crash; ++cursor) {
      serve::Request r = stream[cursor];
      r.arrival = std::max(r.arrival, resume);
      seg.push_back(r);
    }
    out.segments.push_back(stack.backend().run(seg));

    if (g > 0) {
      RestartCycle& cycle = out.cycles.back();
      cycle.first_reply = kInf;
      for (const serve::Response& resp : out.segments.back().responses) {
        if (!resp.dropped)
          cycle.first_reply = std::min(cycle.first_reply, resp.completion);
      }
    }
    if (!final_gen) {
      // Seal the crash: in-memory state past `crash` is gone; the torn
      // write models the append/snapshot the process died inside.
      stack.durability()->apply_crash(restarts[g].shard, restarts[g].bytes);
      RestartCycle cycle;
      cycle.event = restarts[g];
      cycle.crash_time = restarts[g].at;
      cycle.down_seconds = restarts[g].duration;
      out.cycles.push_back(std::move(cycle));
    }
  }
  return out;
}

}  // namespace harmonia::shard
