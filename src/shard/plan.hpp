// Range partitioning of the key domain across simulated devices.
//
// The paper caps out at one GPU; the natural next axis is sharding the
// key space across several independent device-resident Harmonia trees.
// The prefix-sum layout makes range sharding cheap: each shard is just a
// smaller, fully self-contained key-region + child-region pair, so no
// cross-device pointers exist and every shard can be built, searched,
// updated, and resynced on its own.
//
// A ShardPlan is a sorted list of lower bounds: shard s serves the
// contiguous, inclusive key range [lower_bounds[s], lower_bounds[s+1]-1]
// (the last shard runs to the top of the domain). Two construction modes:
//   equal_width     : split the 64-bit key universe into equal slices —
//                     right for uniformly spread keys, zero metadata;
//   sample_balanced : cut at quantiles of a sorted key sample so every
//                     shard holds about the same number of keys even
//                     when the population is skewed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "harmonia/tree.hpp"

namespace harmonia::shard {

class ShardPlan {
 public:
  /// Routing tables and per-shard device state are all O(num_shards);
  /// the cap just keeps misconfigured sweeps from building 10^6 devices.
  static constexpr unsigned kMaxShards = 64;

  /// Splits [0, 2^64-1] into `num_shards` equal slices.
  static ShardPlan equal_width(unsigned num_shards);

  /// Cuts at the s*n/num_shards quantiles of `sorted_keys` (ascending).
  /// Degenerate samples (too few / duplicated quantiles) still yield a
  /// valid plan: colliding cuts are nudged up by one key. An empty sample
  /// falls back to equal_width.
  static ShardPlan sample_balanced(std::span<const Key> sorted_keys,
                                   unsigned num_shards);

  /// Wraps explicit lower bounds: bounds[0] must be 0 and the list must
  /// be strictly increasing.
  static ShardPlan from_bounds(std::vector<Key> lower_bounds);

  unsigned num_shards() const { return static_cast<unsigned>(lo_.size()); }

  /// The unique shard whose range contains `key`.
  unsigned shard_of(Key key) const;

  /// Inclusive bounds of shard `s`.
  Key lo(unsigned s) const;
  Key hi(unsigned s) const;

  std::span<const Key> lower_bounds() const { return lo_; }

  /// Partition invariants: non-empty, lo(0)==0, strictly increasing
  /// bounds (ranges disjoint and covering). Throws ContractViolation.
  void validate() const;

  bool operator==(const ShardPlan& other) const { return lo_ == other.lo_; }

 private:
  explicit ShardPlan(std::vector<Key> lo);

  std::vector<Key> lo_;  // lower bound per shard, ascending, lo_[0] == 0
};

}  // namespace harmonia::shard
