// Online serving over a range-sharded, multi-device index: the Backend
// hooks (serve/backend.hpp) over a per-shard copy of the serving
// machinery. Every shard gets its own bounded admission queues and
// deadline-driven batch scheduler (src/serve/), and its own device
// timeline, so shards batch and dispatch independently — the whole point
// of sharding the serving path.
//
// Three pieces are genuinely cross-shard:
//   Range fan-out  : a range query whose span straddles a partition
//                    boundary is split into per-shard sub-requests
//                    (bounds clamped), admitted all-or-nothing, and its
//                    response is reassembled in shard order when the last
//                    piece completes.
//   Epoch barrier  : in quiesce mode, buffered updates apply as one
//                    cross-shard epoch — the trigger quiesces every
//                    shard, waits for the slowest device (the barrier),
//                    applies the Algorithm-1 updater per shard, resyncs
//                    every touched image, and reopens admission on all
//                    shards at the same instant.
//   Version fence  : in overlap mode (the double-buffered pipeline,
//                    docs/serving.md#epoch-pipeline), each shard stages
//                    image N+1 in the background and swaps at its own
//                    batch boundary — staggered, no global barrier. The
//                    fence keeps straddling ranges consistent anyway: a
//                    shard cannot swap while fan-out pieces are queued on
//                    it, and new straddlers arriving while shards
//                    disagree on version are parked until the last swap.
//
// Incremental (delta) mode rides the same fence: each touched shard
// first tries to patch the committed image in place (gap fills + device
// overlay, see harmonia/index.hpp), and only a shard whose gaps or
// overlay are exhausted falls back to a full shadow build — so shard A
// can take a cheap patch commit while shard B compacts, each at its own
// batch boundary, with per-shard overlays compacting independently. The
// commit (leaf flush or image swap alike) still waits for the shard's
// fence to clear, so straddlers never observe a torn version.
// Every query therefore observes a whole number of epochs on every shard
// it touches — there are no torn cross-shard states, which is what the
// stress tests pin.
//
// Replica groups (config.replicas = K > 1): every shard's committed
// image is served by K interchangeable device replicas. Scatter/gather
// picks the earliest-free healthy replica per sub-batch (round-robin on
// ties, so equally-loaded replicas alternate deterministically), epoch
// swaps wait for the whole group to go idle (the group-wide version
// fence), and a lost replica fails over to the survivors — zero
// CPU-oracle degraded queries while any member is healthy. The rejoining
// replica catches up by replaying the group's update-log tail (epochs
// after the one it last applied); only losing the LAST member falls back
// to the K = 1 fence + degraded path. K = 1 is bit-identical to the
// pre-replica behaviour.
//
// Hot-range splitting (config.reshard.split_hot): per-shard routed-query
// windows are sampled on a virtual-time cadence; a shard running hotter
// than hot_factor x the fleet mean triggers a live migration — the hot
// range is cut at its median key, both post-split images build through
// the same double-buffered staging as overlap epochs while the old plan
// keeps serving, and the epoch-versioned ShardPlan flips at a swap
// boundary with in-flight fan-outs parked on the fence (plan_version
// bumps once per committed migration).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "qos/admission.hpp"
#include "serve/backend.hpp"
#include "serve/batch_scheduler.hpp"
#include "serve/options.hpp"
#include "shard/replica_group.hpp"
#include "shard/sharded_index.hpp"

namespace harmonia::shard {

class ShardedServer : public serve::Backend {
 public:
  /// Every shard of `index` must hold keys (plan the partition from the
  /// served keys, e.g. ShardPlan::sample_balanced) so each shard has a
  /// live device and scheduler for the whole run. The sharded stack
  /// shares serve::ServeOptions (batch/epoch configs are per shard) and
  /// the unified serve::ServerReport, whose shard_* vectors it fills.
  ShardedServer(ShardedIndex& index, const serve::ServeOptions& config);

  unsigned num_shards() const override { return index_.num_shards(); }

  /// The image/PSA knobs dispatches are using right now. Tunables install
  /// fleet-wide at fenced boundaries, so every shard's scheduler holds
  /// the same values — shard 0 speaks for the fleet.
  std::pair<unsigned, unsigned> effective_query_knobs() const override;

 protected:
  void begin_run(serve::ServerReport& report) override;
  double next_batch_time(double now) const override;
  void dispatch_ready_batch(double now, serve::RequestSource& source,
                            serve::ServerReport& report) override;
  void submit(const serve::Request& r, serve::RequestSource& source,
              serve::ServerReport& report) override;
  void buffer_update(const serve::Request& r) override;
  double next_epoch_time(double now) const override;
  void epoch_begin(double now, serve::RequestSource& source,
                   serve::ServerReport& report) override;
  double next_swap_time() const override;
  void epoch_commit(double now, serve::RequestSource& source,
                    serve::ServerReport& report) override;
  double next_fault_time() const override;
  void handle_fault(double now, serve::RequestSource& source,
                    serve::ServerReport& report) override;
  double next_restore_time() const override;
  void handle_restore(double now, serve::ServerReport& report) override;
  void final_drain(double now, serve::RequestSource& source,
                   serve::ServerReport& report) override;
  void finish_run(serve::ServerReport& report) override;
  void install_tunables(const serve::Tunables& t, double now) override;

 private:
  /// Sub-request ids live above this bit so they can never collide with
  /// stream ids (which count up from 0).
  static constexpr std::uint64_t kSubIdBase = 1ULL << 63;

  struct PendingMerge {
    std::size_t parts_expected = 0;
    /// (shard, part) pairs; merged in shard order on completion.
    std::vector<std::pair<unsigned, serve::Response>> parts;
    serve::Request original;
  };

  /// One shard's half-open state inside a staged (overlap-mode) epoch.
  struct ShardStage {
    bool staged = false;   // this shard has ops (and a shadow tree)
    bool patched = false;  // incremental: in-place patch, no shadow tree
    bool swapped = false;  // image N+1 already installed
    double ready = 0.0;    // staged image uploaded + audited
    double upload_seconds = 0.0;
    /// Device bytes the patch commit will move (patched shards only).
    std::uint64_t patch_bytes = 0;
    /// Client ops this shard absorbed in the epoch (the catch-up ledger
    /// entry a lost replica will need; 0 for migration stages).
    std::uint64_t ops = 0;
    HarmoniaIndex::StagedUpdate update;
  };

  /// The one staged epoch in flight between epoch_begin and the last
  /// per-shard swap (single staging buffer, like the single-device path).
  struct InflightEpoch {
    unsigned ordinal = 0;  // epoch number every shard will swap to
    double trigger = 0.0;
    double build_seconds = 0.0;
    double build_done = 0.0;
    /// True when every staged shard patched in place (the epoch books as
    /// a patch epoch); any shadow build makes it a compaction epoch.
    bool patch = false;
    UpdateStats stats;  // summed over shards
    std::vector<serve::Request> requests;
    std::vector<ShardStage> shards;
    unsigned remaining = 0;  // shards not yet swapped
  };

  /// One live migration between a hot donor and its adjacent receiver:
  /// both post-split images stage through the double-buffered machinery
  /// while the old plan keeps serving, then the plan flips at a swap
  /// boundary (docs/sharding.md#live-resharding). Mutually exclusive
  /// with a staged epoch — updates buffer while a migration is in
  /// flight and trigger right after the flip.
  struct InflightMigration {
    unsigned donor = 0;
    unsigned receiver = 0;
    double trigger = 0.0;
    double build_seconds = 0.0;
    double build_done = 0.0;
    std::uint64_t moved_keys = 0;
    /// The post-flip partition (ShardPlan has no default ctor, so the
    /// bounds travel raw and from_bounds runs at commit).
    std::vector<Key> new_lo;
    ShardStage donor_stage;
    ShardStage receiver_stage;
  };

  void admit_query(const serve::Request& r, double now,
                   serve::RequestSource& source, serve::ServerReport& report);
  void drop(const serve::Request& r, unsigned shard, serve::RequestSource& source,
            serve::ServerReport& report, const char* note = "rejected");
  /// Answers a request evicted from shard `s` by QoS overload policy: it
  /// was admitted, so it sheds (a dropped response). An evicted fan-out
  /// piece lowers the shard's version fence and poisons its merge.
  void handle_evicted(unsigned s, serve::Request victim, double now,
                      serve::RequestSource& source, serve::ServerReport& report);
  /// A scan's cap, clamped like the scheduler clamps it (so fan-out span,
  /// merge truncation, and the device all agree on one n).
  std::uint32_t clamped_scan_n(const serve::Request& r) const;
  /// True when the request's span/coverage crosses a shard boundary (the
  /// parking predicate for mixed-version windows).
  bool straddles(const serve::Request& r) const;
  void handle_dispatch(unsigned s, unsigned r, serve::BatchScheduler::Dispatch d,
                       serve::RequestSource& source, serve::ServerReport& report);
  /// Routes one finished response: sub-responses park in their merge
  /// slot until the fan-out completes; whole responses go to the report.
  void finish(unsigned s, serve::Response resp, serve::RequestSource& source,
              serve::ServerReport& report);
  void deliver(serve::Response resp, serve::RequestSource& source,
               serve::ServerReport& report);
  /// Quiesce-mode epoch: drain every shard, barrier, apply, resync.
  void run_epoch(double at, serve::RequestSource& source,
                 serve::ServerReport& report);
  /// Overlap-mode trigger: stage every touched shard's image N+1. In
  /// incremental mode each touched shard patches in place when its gaps
  /// and overlay suffice, else falls back to a staged compaction build.
  void begin_overlap_epoch(double now, serve::ServerReport& report);
  /// Compaction build for shard `s`: folds the shard's committed overlay
  /// ahead of ops[absorbed..] into one staged shadow build, backs the
  /// replays out of the stats, and merges `prefix` (the stats of an
  /// absorbed in-place patch prefix, zero when no patch was attempted).
  void stage_with_fold(unsigned s, std::span<const queries::UpdateOp> ops,
                       std::size_t absorbed, const UpdateStats& prefix,
                       InflightEpoch& ep);
  /// Instant shard `s` (unswapped, fence clear) can take its swap.
  double swap_time_for(unsigned s) const;
  /// Books the finished staged epoch and re-admits parked straddlers.
  void finish_overlap_epoch(double now, serve::RequestSource& source,
                            serve::ServerReport& report);
  /// True while shards disagree on their epoch version (between the
  /// first and last swap of a staged epoch): new straddling ranges park.
  bool mixed_version() const {
    return inflight_.has_value() && inflight_->remaining < index_.num_shards();
  }
  /// True once any unswapped shard's staged image is ready at `now`: a
  /// swap is due, so new straddling ranges must park instead of raising
  /// the version fence again. Without this the fence never drains under
  /// a sustained straddler stream and the swap starves (liveness, not
  /// just consistency).
  bool swap_pending(double now) const {
    if (!inflight_.has_value()) return false;
    for (const ShardStage& st : inflight_->shards) {
      if (!st.swapped && st.ready <= now) return true;
    }
    return false;
  }

  /// Whole-shard fencing (the last healthy replica died): queued work
  /// re-routes to the CPU oracle, the key range serves degraded while
  /// the replacement device re-images, the shard rejoins at restore
  /// time. With K > 1, handle_fault absorbs losses by failover and only
  /// falls through to this when no member survives.
  void fence_shard(unsigned s, unsigned replica, double now, double repair,
                   serve::RequestSource& source, serve::ServerReport& report);
  void restore_shard(double now, serve::ServerReport& report);
  /// Brings the earliest due lost replica back: it catches up by
  /// replaying the group's update-log tail (epochs after the one it last
  /// applied), or by a full re-image when the plan changed since it was
  /// lost — a migration's boundary move never reaches the update log.
  void rejoin_replica(double now, serve::ServerReport& report);

  /// Hot-range detection on the virtual-time cadence; arms migration_
  /// when a shard runs hotter than hot_factor x the fleet-mean window.
  void maybe_start_migration(double now);
  void start_migration(unsigned donor, unsigned receiver, double now);
  /// Instant the armed migration can flip the plan: both staged sides
  /// ready AND both shards fully drained (queues empty, fences clear,
  /// groups idle); kNever until then.
  double migration_swap_time() const;
  /// True once both staged sides are uploadable at `now`: new arrivals
  /// touching the donor/receiver span park so the drain converges.
  bool migration_swap_pending(double now) const;
  /// True when the request's current-plan span intersects the migrating
  /// pair (the parking predicate while a flip is pending).
  bool touches_migration(const serve::Request& r) const;
  void commit_migration(double now, serve::RequestSource& source,
                        serve::ServerReport& report);
  /// Serves one request of a fenced shard's range from the host tree on
  /// the shard's CPU timeline; sheds (dropped response) once the CPU
  /// backlog exceeds the degraded policy's max_backlog.
  serve::Response degraded_serve(unsigned s, const serve::Request& r, double now);

  std::size_t total_depth() const;

  /// Pushes a snapshot's image/PSA knobs into every shard's dispatch
  /// path — called only when no staged epoch or migration is in flight
  /// (so replicas and straddling fan-outs never observe mixed values).
  void install_query_knobs(const serve::Tunables& t);
  /// Fleet-wide swap boundary (the last per-shard swap of a staged epoch,
  /// or a committed migration/quiesce epoch): installs a latched snapshot
  /// and feeds the controller shard 0's re-profiled knobs.
  void at_fleet_swap_boundary(double now);

  /// Flattened replica-timeline accessors (slot(s, r) = s * K + r).
  std::size_t slot(unsigned s, unsigned r) const {
    return std::size_t{s} * replicas_ + r;
  }
  double& rfree(unsigned s, unsigned r) { return replica_free_[slot(s, r)]; }
  double rfree(unsigned s, unsigned r) const {
    return replica_free_[slot(s, r)];
  }
  std::span<const double> group_span(unsigned s) const {
    return std::span<const double>(replica_free_).subspan(slot(s, 0), replicas_);
  }
  /// Earliest a healthy member of shard `s`'s group frees (the dispatch
  /// gate) / instant the whole group is idle (the swap fence).
  double shard_min_free(unsigned s) const {
    return groups_[s].min_free(group_span(s));
  }
  double group_free(unsigned s) const {
    return groups_[s].max_free(group_span(s));
  }

  /// Per-class cached metric handles (null when unobserved).
  struct ClassMetrics {
    obs::Counter* completed = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* throttled = nullptr;
    obs::LatencyHistogram* latency = nullptr;
  };

  ShardedIndex& index_;
  serve::ServeOptions config_;
  fault::FaultInjector injector_;
  /// Per-shard durability writers (empty = no persistence): each shard
  /// write-ahead logs its own epoch sub-batches and snapshots on its own
  /// cadence, so shards recover independently.
  std::vector<persist::ShardDurability*> durability_;
  /// Per-tenant token-bucket throttling at the admission edge (stream
  /// level: one bucket per tenant, not per shard).
  qos::AdmissionController admission_;
  /// One scheduler per shard.
  std::vector<std::unique_ptr<serve::BatchScheduler>> sched_;
  /// Replica group size K (config.replicas; 1 = unreplicated).
  unsigned replicas_ = 1;
  /// Per-replica device timelines, flattened shard-major: slot(s, r) =
  /// s * K + r. At K = 1 this is the old per-shard device_free_.
  std::vector<double> replica_free_;
  /// Health + catch-up cursor per shard's group.
  std::vector<ReplicaGroup> groups_;
  /// Flattened per-slot rejoin instants for losses absorbed by failover
  /// (kInf = slot healthy or fenced-path, which uses restore_at_).
  std::vector<double> rejoin_at_;
  /// Plan version at the instant each slot was lost: a rejoin whose
  /// shard plan moved since must full-re-image instead of log catch-up.
  std::vector<unsigned> lost_plan_;
  /// The slot the whole-shard fence took down (restore rejoins it).
  std::vector<unsigned> fence_replica_;
  /// Per-shard (epoch, client-op count) ledger, appended at each commit
  /// when K > 1: the in-memory stand-in for the update-log tail when no
  /// durability domain is wired (same per-epoch granularity as the WAL).
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> epoch_ops_;
  /// Per-shard fencing state: fenced shards serve degraded from the CPU
  /// oracle until restore_at_; cpu_free_ is the degraded-path timeline.
  std::vector<char> fenced_;
  std::vector<double> fence_start_;
  std::vector<double> restore_at_;
  std::vector<double> cpu_free_;
  std::vector<serve::Request> pending_updates_;
  /// Fully committed epochs (every shard swapped / quiesce applied).
  unsigned epochs_ = 0;
  /// Per-shard epoch version: equals epochs_ outside a swap window; the
  /// shards that already took their staggered swap sit at epochs_ + 1.
  /// Stamped into every response the shard serves (device or degraded).
  std::vector<unsigned> shard_epoch_;
  /// Cross-shard version fence: queued fan-out sub-requests per shard.
  /// A shard with a non-zero fence cannot swap — its queued pieces were
  /// admitted against the current snapshot and their siblings may
  /// already have been served from it.
  std::vector<std::size_t> fence_depth_;
  /// Straddling ranges that arrived during a mixed-version window; they
  /// re-admit (original arrival kept) right after the last swap.
  std::vector<serve::Request> parked_;
  std::optional<InflightEpoch> inflight_;
  std::optional<InflightMigration> migration_;
  /// Image/PSA knobs latched while a staged epoch or migration is in
  /// flight; they install fleet-wide at its last swap (apply_tunables
  /// contract, fenced so shards never dispatch with mixed values).
  std::optional<serve::Tunables> pending_query_;
  /// Bumps once per committed migration; starts (and stays, without
  /// split_hot) at 1 — the report invariant plan_version == 1 +
  /// migrations pins it.
  unsigned plan_version_ = 1;
  unsigned migrations_done_ = 0;
  /// Hot-range detection state: next cadence instant and the per-shard
  /// routed-query window since the last sample.
  double next_detect_ = 0.0;
  std::vector<std::uint64_t> window_routed_;
  std::uint64_t next_sub_id_ = kSubIdBase;
  /// Sub-request id -> parent request id.
  std::map<std::uint64_t, std::uint64_t> parent_of_;
  /// Parent request id -> fan-out reassembly state.
  std::map<std::uint64_t, PendingMerge> merges_;
  /// Cached metric handles (null when unobserved).
  obs::Counter* split_ranges_total_ = nullptr;
  obs::Counter* split_scans_total_ = nullptr;
  std::array<ClassMetrics, qos::kNumClasses> class_metrics_{};
  obs::Counter* degraded_total_ = nullptr;
  obs::Counter* epochs_total_ = nullptr;
  obs::LatencyHistogram* swap_wait_hist_ = nullptr;
  obs::LatencyHistogram* stall_hist_ = nullptr;
};

}  // namespace harmonia::shard
