// Online serving over a range-sharded, multi-device index.
//
// One virtual-clock event loop drives a per-shard copy of the serving
// machinery: every shard gets its own bounded admission queues and
// deadline-driven batch scheduler (src/serve/), and its own device
// timeline, so shards batch and dispatch independently — the whole point
// of sharding the serving path.
//
// Two pieces are genuinely cross-shard:
//   Range fan-out  : a range query whose span straddles a partition
//                    boundary is split into per-shard sub-requests
//                    (bounds clamped), admitted all-or-nothing, and its
//                    response is reassembled in shard order when the last
//                    piece completes.
//   Epoch barrier  : buffered updates apply as one cross-shard epoch.
//                    The trigger quiesces every shard (flushes all
//                    pending query batches), waits for the slowest
//                    device (the barrier), applies the Algorithm-1
//                    updater per shard, resyncs every touched image
//                    (overlapped, one link per device), and reopens
//                    admission on all shards at the same instant. Every
//                    query therefore observes a whole number of epochs on
//                    *every* shard — there are no torn cross-shard
//                    states, which is what the stress tests pin.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "serve/batch_scheduler.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"
#include "shard/sharded_index.hpp"

namespace harmonia::shard {

struct ShardedServerConfig {
  /// Per-shard scheduler configuration (every shard gets its own lanes
  /// with this capacity, so aggregate admission scales with shards).
  serve::BatchConfig batch;
  serve::EpochConfig epoch;
  TransferModel link;
  /// Deterministic fault schedule and mitigation knobs. An empty plan is
  /// the exact pre-fault event loop, bit for bit.
  fault::FaultPlan faults;
  fault::MitigationConfig mitigation;
  /// Optional metrics + request-lifecycle tracing (docs/observability.md):
  /// every shard's scheduler, the injector, and the fan-out/merge/degraded
  /// paths stamp the same registry/recorder. Null = zero overhead.
  obs::Observer obs;
};

struct ShardedServerReport : serve::ServerReport {
  /// Query batches dispatched / queries served per shard.
  std::vector<std::uint64_t> shard_batches;
  std::vector<std::uint64_t> shard_queries;
  /// Per-shard admissions and drops, tallied exactly once at the routing
  /// point: a query counts toward the shard its routing starts at
  /// (points: the owner shard; ranges: the first shard of the span), so
  /// each vector sums to its stream-level counter. The schedulers' own
  /// admitted()/rejected() tallies cannot be aggregated here — they
  /// count every fan-out sub-request (double-counting straddling
  /// ranges) and never see all-or-nothing probe drops (omitting them).
  std::vector<std::uint64_t> shard_admitted;
  std::vector<std::uint64_t> shard_dropped;
  /// Range requests that fanned out across >1 shard.
  std::uint64_t split_ranges = 0;
  /// Device idle time summed over shards while epoch barriers gathered
  /// the slowest shard (the intrinsic cost of atomic cross-shard epochs).
  double barrier_wait_seconds = 0.0;

  /// The single-stream identities plus the per-shard routing sums:
  ///   sum(shard_admitted) + update_requests == admitted
  ///   sum(shard_dropped) == dropped
  ///   sum(shard_batches) == batches
  /// (shard_queries sums fan-out sub-requests, so it has no stream-level
  /// twin — see the field comment above.) Throws ContractViolation.
  void check_invariants() const;
};

class ShardedServer {
 public:
  /// Every shard of `index` must hold keys (plan the partition from the
  /// served keys, e.g. ShardPlan::sample_balanced) so each shard has a
  /// live device and scheduler for the whole run.
  ShardedServer(ShardedIndex& index, const ShardedServerConfig& config);

  ShardedServerReport run(serve::RequestSource& source);
  ShardedServerReport run(std::span<const serve::Request> requests);

 private:
  /// Sub-request ids live above this bit so they can never collide with
  /// stream ids (which count up from 0).
  static constexpr std::uint64_t kSubIdBase = 1ULL << 63;

  struct PendingMerge {
    std::size_t parts_expected = 0;
    /// (shard, part) pairs; merged in shard order on completion.
    std::vector<std::pair<unsigned, serve::Response>> parts;
    serve::Request original;
  };

  void admit_query(const serve::Request& r, serve::RequestSource& source,
                   ShardedServerReport& report);
  void drop(const serve::Request& r, unsigned shard, serve::RequestSource& source,
            ShardedServerReport& report);
  void handle_dispatch(unsigned s, serve::BatchScheduler::Dispatch d,
                       serve::RequestSource& source, ShardedServerReport& report);
  /// Routes one finished response: sub-responses park in their merge
  /// slot until the fan-out completes; whole responses go to the report.
  void finish(unsigned s, serve::Response resp, serve::RequestSource& source,
              ShardedServerReport& report);
  void deliver(serve::Response resp, serve::RequestSource& source,
               ShardedServerReport& report);
  void run_epoch(double at, serve::RequestSource& source,
                 ShardedServerReport& report);

  /// Shard-lost handling: fence the shard (its queued work re-routes to
  /// the CPU oracle), serve its key range degraded while the replacement
  /// device re-images, then rejoin it at restore time.
  void fence_shard(double now, serve::RequestSource& source,
                   ShardedServerReport& report);
  void restore_shard(double now, ShardedServerReport& report);
  /// Serves one request of a fenced shard's range from the host tree on
  /// the shard's CPU timeline; sheds (dropped response) once the CPU
  /// backlog exceeds the degraded policy's max_backlog.
  serve::Response degraded_serve(unsigned s, const serve::Request& r, double now);
  double next_restore_time() const;

  std::size_t total_depth() const;

  ShardedIndex& index_;
  ShardedServerConfig config_;
  fault::FaultInjector injector_;
  /// One scheduler per shard.
  std::vector<std::unique_ptr<serve::BatchScheduler>> sched_;
  std::vector<double> device_free_;
  /// Per-shard fencing state: fenced shards serve degraded from the CPU
  /// oracle until restore_at_; cpu_free_ is the degraded-path timeline.
  std::vector<char> fenced_;
  std::vector<double> fence_start_;
  std::vector<double> restore_at_;
  std::vector<double> cpu_free_;
  std::vector<serve::Request> pending_updates_;
  unsigned epochs_ = 0;
  std::uint64_t next_sub_id_ = kSubIdBase;
  /// Sub-request id -> parent request id.
  std::map<std::uint64_t, std::uint64_t> parent_of_;
  /// Parent request id -> fan-out reassembly state.
  std::map<std::uint64_t, PendingMerge> merges_;
  /// Cached metric handles (null when unobserved).
  obs::Counter* split_ranges_total_ = nullptr;
  obs::Counter* degraded_total_ = nullptr;
  obs::Counter* epochs_total_ = nullptr;
};

}  // namespace harmonia::shard
