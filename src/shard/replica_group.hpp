// ReplicaGroup — K interchangeable device replicas serving one shard.
//
// Every member of a group holds the same committed image (staged epoch
// uploads ship to all healthy members concurrently), so any healthy
// replica can serve any batch routed at the shard. The group tracks
// which slots are healthy, which committed epoch a lost slot last
// applied (the catch-up cursor for log-tail shipping on rejoin, see
// docs/sharding.md#replica-groups), and a round-robin cursor used to
// break ties between equally-free replicas deterministically.
//
// The group does NOT own device timelines: the serving layer keeps one
// free-instant per replica (flattened shard-major) and passes the
// group's slice to pick()/min_free()/max_free(). Keeping the timing
// state outside makes the group trivially copyable state with no clock
// coupling — and keeps the K == 1 path bit-identical to the
// pre-replica single-timeline behaviour.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace harmonia::shard {

class ReplicaGroup {
 public:
  explicit ReplicaGroup(unsigned k);

  unsigned size() const { return static_cast<unsigned>(healthy_.size()); }
  unsigned healthy_count() const;
  bool is_healthy(unsigned r) const;

  /// Committed epoch the slot had applied when it was lost (0 if it was
  /// never lost). Meaningful only while the slot is down.
  std::uint64_t lost_epoch(unsigned r) const;

  /// Marks slot `r` lost at committed epoch `epoch` (the rejoin replays
  /// the log tail with epochs > `epoch`).
  void lose(unsigned r, std::uint64_t epoch);

  /// Marks slot `r` healthy again (after catch-up or a full re-image).
  void rejoin(unsigned r);

  /// Straggler-aware round-robin dispatch pick: the earliest-free
  /// healthy replica, with ties broken in rotation order from the
  /// cursor (which then advances past the pick — equally-free replicas
  /// alternate). `free` is the group's slice of per-replica device
  /// free-instants. Throws when no replica is healthy.
  unsigned pick(std::span<const double> free);

  /// Earliest/latest free instant over the healthy members: min_free is
  /// the soonest the group can take a batch (+inf when none healthy),
  /// max_free the instant the whole group is idle — the group-wide swap
  /// fence (0.0 when none healthy: a dead group holds nothing up).
  double min_free(std::span<const double> free) const;
  double max_free(std::span<const double> free) const;

 private:
  std::vector<char> healthy_;
  std::vector<std::uint64_t> lost_epoch_;
  unsigned cursor_ = 0;
};

}  // namespace harmonia::shard
