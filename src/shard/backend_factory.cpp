#include "shard/backend_factory.hpp"

#include <utility>

#include "btree/btree.hpp"
#include "common/expect.hpp"
#include "queries/workload.hpp"
#include "serve/server.hpp"
#include "shard/plan.hpp"

namespace harmonia::shard {

ServingStack::ServingStack(const TopologySpec& topo,
                           const serve::ServeOptions& options) {
  HARMONIA_CHECK_MSG(topo.shards >= 1 && topo.shards <= ShardPlan::kMaxShards,
                     "shards must lie in [1, " << ShardPlan::kMaxShards
                                               << "], got " << topo.shards);
  keys_ = queries::make_tree_keys(1ULL << topo.log2_keys, topo.seed);
  std::vector<btree::Entry> entries;
  entries.reserve(keys_.size());
  for (Key k : keys_) entries.push_back({k, btree::value_for_key(k)});

  serve::ServeOptions opts = options;
  // The durability domain is wired after any recovery below: its
  // per-shard writers seed their retained-snapshot lists from disk, and
  // recovery rewrites the disk (the checkpoint) as its final step.
  const auto wire_durability = [&] {
    if (opts.persist.enabled()) {
      durability_ = std::make_unique<persist::DurabilityDomain>(opts.persist,
                                                                topo.shards);
      opts.durability = durability_.get();
    }
  };

  if (topo.shards == 1) {
    gpusim::DeviceSpec spec = topo.device;
    spec.global_mem_bytes = topo.device_global_bytes;
    device_ = std::make_unique<gpusim::Device>(spec);
    const auto bulk_build = [&] {
      btree::BTree builder(topo.fanout);
      builder.bulk_load(entries, 0.69);
      return std::make_unique<HarmoniaIndex>(
          *device_, HarmoniaTree::from_btree(builder),
          HarmoniaIndex::Options{.fanout = topo.fanout});
    };
    if (opts.persist.recover) {
      persist::RecoveryManager rm(opts.persist);
      persist::RecoveryManager::Materials mat = rm.load_shard(0);
      if (mat.snapshot.has_value()) {
        // The snapshot's base tree becomes the live index; its sidecar
        // fill factor keeps the gapped-leaf geometry of the crashed
        // generation, so later compactions re-gap identically.
        index_ = std::make_unique<HarmoniaIndex>(
            *device_, std::move(mat.snapshot->tree),
            HarmoniaIndex::Options{
                .fanout = topo.fanout,
                .fill_factor = mat.snapshot->extras.fill_factor});
      } else {
        index_ = bulk_build();
      }
      recoveries_.push_back(
          rm.finish(std::move(mat), *index_, opts.link, keys_.size()));
    } else {
      index_ = bulk_build();
    }
    wire_durability();
    backend_ = std::make_unique<serve::Server>(*index_, opts);
    return;
  }

  ShardedOptions shopts;
  shopts.index.fanout = topo.fanout;
  shopts.device = topo.device;
  shopts.device_global_bytes = topo.device_global_bytes;
  shopts.link = opts.link;
  // Balanced partition over the served keys: every shard is populated,
  // which the sharded serving path requires.
  sharded_ = std::make_unique<ShardedIndex>(
      entries, ShardPlan::sample_balanced(keys_, topo.shards), shopts);
  if (opts.persist.recover) {
    // Shards recover independently: each cold-starts from its own
    // directory's newest-valid snapshot + log, falling back to the bulk
    // build above (already in place) for a shard with nothing decodable.
    persist::RecoveryManager rm(opts.persist);
    for (unsigned s = 0; s < topo.shards; ++s) {
      persist::RecoveryManager::Materials mat = rm.load_shard(s);
      const std::uint64_t rebuild_keys = sharded_->shard_key_count(s);
      if (mat.snapshot.has_value())
        sharded_->install_shard(s, std::move(mat.snapshot->tree));
      recoveries_.push_back(rm.finish(std::move(mat), *sharded_->shard(s),
                                      opts.link, rebuild_keys));
    }
  }
  wire_durability();
  backend_ = std::make_unique<ShardedServer>(*sharded_, opts);
}

}  // namespace harmonia::shard
