#include "shard/backend_factory.hpp"

#include "btree/btree.hpp"
#include "common/expect.hpp"
#include "queries/workload.hpp"
#include "serve/server.hpp"
#include "shard/plan.hpp"

namespace harmonia::shard {

ServingStack::ServingStack(const TopologySpec& topo,
                           const serve::ServeOptions& options) {
  HARMONIA_CHECK_MSG(topo.shards >= 1 && topo.shards <= ShardPlan::kMaxShards,
                     "shards must lie in [1, " << ShardPlan::kMaxShards
                                               << "], got " << topo.shards);
  keys_ = queries::make_tree_keys(1ULL << topo.log2_keys, topo.seed);
  std::vector<btree::Entry> entries;
  entries.reserve(keys_.size());
  for (Key k : keys_) entries.push_back({k, btree::value_for_key(k)});

  if (topo.shards == 1) {
    btree::BTree builder(topo.fanout);
    builder.bulk_load(entries, 0.69);
    gpusim::DeviceSpec spec = topo.device;
    spec.global_mem_bytes = topo.device_global_bytes;
    device_ = std::make_unique<gpusim::Device>(spec);
    index_ = std::make_unique<HarmoniaIndex>(
        *device_, HarmoniaTree::from_btree(builder),
        HarmoniaIndex::Options{.fanout = topo.fanout});
    backend_ = std::make_unique<serve::Server>(*index_, options);
    return;
  }

  ShardedOptions shopts;
  shopts.index.fanout = topo.fanout;
  shopts.device = topo.device;
  shopts.device_global_bytes = topo.device_global_bytes;
  shopts.link = options.link;
  // Balanced partition over the served keys: every shard is populated,
  // which the sharded serving path requires.
  sharded_ = std::make_unique<ShardedIndex>(
      entries, ShardPlan::sample_balanced(keys_, topo.shards), shopts);
  backend_ = std::make_unique<ShardedServer>(*sharded_, options);
}

}  // namespace harmonia::shard
