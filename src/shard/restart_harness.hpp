// Crash-restart harness: the only consumer of `restart` fault events.
//
// A backend cannot restart itself — the process dies under it — so the
// harness sits one level above ServingStack and models the whole cycle:
//
//   1. serve the stream up to the crash instant on a live stack whose
//      durability domain drops every durable write at/after the crash;
//   2. seal the crash: tear the configured bytes off the victim shard's
//      last surviving durable write (a torn log append, a half-written
//      snapshot, or a torn manifest — whichever was in flight);
//   3. cold-start a fresh stack from the same directories
//      (ServingStack's recover path: newest-valid snapshot + overlay
//      fold + log replay + checkpoint) and charge the modeled recovery
//      seconds plus the event's down time;
//   4. resume the stream — arrivals that landed while the process was
//      down are admitted the instant it comes back — and record the
//      recovered generation's time-to-first-reply.
//
// Multiple restart events chain: each generation serves its slice of
// the stream and the next recovers from whatever the crash left behind.
// Everything runs on the shared absolute virtual clock, so a
// (stream, topology, plan) triple replays bit-identically.
#pragma once

#include <span>
#include <vector>

#include "fault/fault_plan.hpp"
#include "persist/recovery.hpp"
#include "serve/backend.hpp"
#include "serve/options.hpp"
#include "shard/backend_factory.hpp"

namespace harmonia::shard {

/// One crash→recover→resume cycle (one `restart` event).
struct RestartCycle {
  /// The restart event this cycle models.
  fault::FaultEvent event;
  double crash_time = 0.0;     // event.at: last instant writes survived
  double down_seconds = 0.0;   // event.duration: process-dead window
  /// Modeled cold-start cost: max over shards (they recover in
  /// parallel, one thread per shard directory).
  double recovery_seconds = 0.0;
  /// crash_time + down_seconds + recovery_seconds: first instant the
  /// recovered generation admits a request.
  double resume_time = 0.0;
  /// Completion of the recovered generation's first non-dropped reply
  /// (+inf when it answered nothing).
  double first_reply = 0.0;
  /// Per-shard recovery reports of the generation that followed.
  std::vector<persist::RecoveryReport> recoveries;

  /// The headline metric: crash to first successful reply.
  double ttfr_seconds() const { return first_reply - crash_time; }
};

struct RestartReport {
  /// One serving report per generation (restarts + 1).
  std::vector<serve::ServerReport> segments;
  /// One cycle per restart event, in time order.
  std::vector<RestartCycle> cycles;
};

/// Runs `stream` (arrival-sorted) through the topology, tearing the
/// process down at every `restart` event in options.faults and
/// recovering from options.persist.dir. Requires persistence enabled
/// and at least one restart event; non-restart fault events ride along
/// in whichever generation's window they fall.
RestartReport run_with_restarts(const TopologySpec& topo,
                                const serve::ServeOptions& options,
                                std::span<const serve::Request> stream);

}  // namespace harmonia::shard
