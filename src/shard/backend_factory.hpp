// The one place that turns "how many devices" into a serving Backend.
//
// Callers (the server-sim tool, the serving benches) describe the
// topology — key count, fanout, shard count, device preset — and get back
// a serve::Backend& plus the served keys; whether that is a single-device
// Server or a range-sharded ShardedServer is decided here, inside src/,
// so no tool or bench ever branches on the shard count again (the API
// redesign's contract, docs/serving.md#migration).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gpusim/device.hpp"
#include "harmonia/index.hpp"
#include "persist/durability.hpp"
#include "persist/recovery.hpp"
#include "serve/backend.hpp"
#include "serve/options.hpp"
#include "shard/sharded_index.hpp"
#include "shard/sharded_server.hpp"

namespace harmonia::shard {

struct TopologySpec {
  /// log2 of the key count; keys come from queries::make_tree_keys(seed).
  std::uint64_t log2_keys = 18;
  unsigned fanout = 64;
  /// 1 = single-device serve::Server; >1 = range-sharded ShardedServer
  /// over a sample_balanced partition of the served keys.
  unsigned shards = 1;
  std::uint64_t seed = 1;
  /// Device preset for every simulated device in the topology.
  gpusim::DeviceSpec device = gpusim::titan_v();
  std::uint64_t device_global_bytes = 8ULL << 30;
};

/// Owns the whole serving topology — keys, device(s), index(es), the
/// optional durability domain, and the Backend over them — with the
/// lifetimes in the right order. Build one, then drive `backend()` with
/// a request stream.
///
/// When `options.persist` is enabled the stack wires a DurabilityDomain
/// through the backend (write-ahead epoch logs + cadence snapshots, one
/// directory per shard). With `options.persist.recover` additionally
/// set, construction cold-starts every shard from disk: newest-valid
/// snapshot (overlay sidecar folded back in), log replay past it, and a
/// checkpoint — falling back to a bulk rebuild from the topology's keys
/// for a shard with no decodable snapshot. `recoveries()` reports what
/// each shard did.
class ServingStack {
 public:
  ServingStack(const TopologySpec& topo, const serve::ServeOptions& options);

  serve::Backend& backend() { return *backend_; }
  const std::vector<Key>& keys() const { return keys_; }
  unsigned num_shards() const { return backend_->num_shards(); }

  /// The wired durability domain, or null when persistence is off.
  persist::DurabilityDomain* durability() { return durability_.get(); }
  /// One report per shard when the stack recovered at construction;
  /// empty otherwise.
  const std::vector<persist::RecoveryReport>& recoveries() const {
    return recoveries_;
  }

 private:
  std::vector<Key> keys_;
  // Single-device topology (null when sharded).
  std::unique_ptr<gpusim::Device> device_;
  std::unique_ptr<HarmoniaIndex> index_;
  // Sharded topology (null when single-device).
  std::unique_ptr<ShardedIndex> sharded_;
  std::unique_ptr<persist::DurabilityDomain> durability_;
  std::vector<persist::RecoveryReport> recoveries_;
  std::unique_ptr<serve::Backend> backend_;
};

}  // namespace harmonia::shard
