#include "shard/plan.hpp"

#include <algorithm>
#include <limits>

#include "common/expect.hpp"

namespace harmonia::shard {

namespace {
constexpr Key kKeyMax = std::numeric_limits<Key>::max();
}  // namespace

ShardPlan::ShardPlan(std::vector<Key> lo) : lo_(std::move(lo)) { validate(); }

ShardPlan ShardPlan::equal_width(unsigned num_shards) {
  HARMONIA_CHECK(num_shards >= 1 && num_shards <= kMaxShards);
  // ceil(2^64 / n) so n * width covers the whole domain (the last shard
  // absorbs the remainder).
  const Key width = kKeyMax / num_shards + 1;
  std::vector<Key> lo(num_shards);
  for (unsigned s = 0; s < num_shards; ++s) lo[s] = width * s;
  return ShardPlan(std::move(lo));
}

ShardPlan ShardPlan::sample_balanced(std::span<const Key> sorted_keys,
                                     unsigned num_shards) {
  HARMONIA_CHECK(num_shards >= 1 && num_shards <= kMaxShards);
  if (sorted_keys.empty()) return equal_width(num_shards);
  HARMONIA_CHECK(std::is_sorted(sorted_keys.begin(), sorted_keys.end()));

  std::vector<Key> lo;
  lo.reserve(num_shards);
  lo.push_back(0);
  for (unsigned s = 1; s < num_shards; ++s) {
    const std::size_t q =
        static_cast<std::size_t>(s) * sorted_keys.size() / num_shards;
    Key cut = sorted_keys[q];
    // Strictly increasing bounds keep every shard's range non-empty even
    // when quantiles collide (tiny or highly duplicated samples).
    if (cut <= lo.back()) {
      HARMONIA_CHECK_MSG(lo.back() < kKeyMax,
                         "cannot place " << num_shards << " cuts above key "
                                         << lo.back());
      cut = lo.back() + 1;
    }
    lo.push_back(cut);
  }
  return ShardPlan(std::move(lo));
}

ShardPlan ShardPlan::from_bounds(std::vector<Key> lower_bounds) {
  return ShardPlan(std::move(lower_bounds));
}

unsigned ShardPlan::shard_of(Key key) const {
  const auto it = std::upper_bound(lo_.begin(), lo_.end(), key);
  // lo_[0] == 0 <= key, so `it` is always past the first element.
  return static_cast<unsigned>(it - lo_.begin()) - 1;
}

Key ShardPlan::lo(unsigned s) const {
  HARMONIA_CHECK(s < lo_.size());
  return lo_[s];
}

Key ShardPlan::hi(unsigned s) const {
  HARMONIA_CHECK(s < lo_.size());
  return s + 1 < lo_.size() ? lo_[s + 1] - 1 : kKeyMax;
}

void ShardPlan::validate() const {
  HARMONIA_CHECK_MSG(!lo_.empty() && lo_.size() <= kMaxShards,
                     "plan must hold 1.." << kMaxShards << " shards");
  HARMONIA_CHECK_MSG(lo_.front() == 0, "first shard must start at key 0");
  for (std::size_t s = 1; s < lo_.size(); ++s) {
    HARMONIA_CHECK_MSG(lo_[s - 1] < lo_[s],
                       "bounds must be strictly increasing (shard " << s << ")");
  }
}

}  // namespace harmonia::shard
