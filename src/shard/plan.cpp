#include "shard/plan.hpp"

#include <algorithm>
#include <limits>

#include "common/expect.hpp"

namespace harmonia::shard {

namespace {
constexpr Key kKeyMax = std::numeric_limits<Key>::max();
}  // namespace

ShardPlan::ShardPlan(std::vector<Key> lo) : lo_(std::move(lo)) { validate(); }

ShardPlan ShardPlan::equal_width(unsigned num_shards) {
  HARMONIA_CHECK(num_shards >= 1 && num_shards <= kMaxShards);
  // ceil(2^64 / n) so n * width covers the whole domain (the last shard
  // absorbs the remainder).
  const Key width = kKeyMax / num_shards + 1;
  std::vector<Key> lo(num_shards);
  for (unsigned s = 0; s < num_shards; ++s) lo[s] = width * s;
  return ShardPlan(std::move(lo));
}

ShardPlan ShardPlan::sample_balanced(std::span<const Key> sorted_keys,
                                     unsigned num_shards) {
  HARMONIA_CHECK(num_shards >= 1 && num_shards <= kMaxShards);
  if (sorted_keys.empty()) return equal_width(num_shards);
  HARMONIA_CHECK(std::is_sorted(sorted_keys.begin(), sorted_keys.end()));

  std::vector<Key> lo;
  lo.reserve(num_shards);
  lo.push_back(0);
  std::size_t begin = 0;  // first sample not yet owned by an earlier shard
  for (unsigned s = 1; s < num_shards; ++s) {
    // Only samples strictly above the last cut can separate the remaining
    // shards. Skipping a duplicate run here (instead of bumping the cut
    // by +1 per collision) is what stops a cascade under heavily
    // duplicated samples from handing later shards ranges no sample key
    // occupies.
    begin = static_cast<std::size_t>(
        std::upper_bound(sorted_keys.begin() +
                             static_cast<std::ptrdiff_t>(begin),
                         sorted_keys.end(), lo.back()) -
        sorted_keys.begin());
    const unsigned shards_left = num_shards - s + 1;  // incl. the one this cut opens
    if (begin < sorted_keys.size()) {
      // Rebalance: quantile over the residual samples, so each remaining
      // shard still receives an even share of the keys that are left.
      const std::size_t q = begin + (sorted_keys.size() - begin) / shards_left;
      lo.push_back(sorted_keys[std::min(q, sorted_keys.size() - 1)]);
    } else {
      // Samples exhausted: spread the remaining cuts evenly over the
      // residual key space instead of packing width-1 shards at the top.
      HARMONIA_CHECK_MSG(lo.back() < kKeyMax,
                         "cannot place " << num_shards << " cuts above key "
                                         << lo.back());
      const Key width = std::max<Key>((kKeyMax - lo.back()) / shards_left, 1);
      lo.push_back(lo.back() + width);
    }
  }
  return ShardPlan(std::move(lo));
}

ShardPlan ShardPlan::from_bounds(std::vector<Key> lower_bounds) {
  return ShardPlan(std::move(lower_bounds));
}

unsigned ShardPlan::shard_of(Key key) const {
  const auto it = std::upper_bound(lo_.begin(), lo_.end(), key);
  // lo_[0] == 0 <= key, so `it` is always past the first element.
  return static_cast<unsigned>(it - lo_.begin()) - 1;
}

Key ShardPlan::lo(unsigned s) const {
  HARMONIA_CHECK(s < lo_.size());
  return lo_[s];
}

Key ShardPlan::hi(unsigned s) const {
  HARMONIA_CHECK(s < lo_.size());
  return s + 1 < lo_.size() ? lo_[s + 1] - 1 : kKeyMax;
}

void ShardPlan::validate() const {
  HARMONIA_CHECK_MSG(!lo_.empty() && lo_.size() <= kMaxShards,
                     "plan must hold 1.." << kMaxShards << " shards");
  HARMONIA_CHECK_MSG(lo_.front() == 0, "first shard must start at key 0");
  for (std::size_t s = 1; s < lo_.size(); ++s) {
    HARMONIA_CHECK_MSG(lo_[s - 1] < lo_[s],
                       "bounds must be strictly increasing (shard " << s << ")");
  }
}

}  // namespace harmonia::shard
