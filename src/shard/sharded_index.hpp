// Range-sharded multi-device layer over the Harmonia core.
//
// One ShardedIndex owns, per shard of its ShardPlan, an independent
// simulated device plus a HarmoniaIndex built from the entries falling
// into that shard's key range. Shards never reference each other, so:
//   search : scatter the batch by partition boundary, push each shard's
//            sub-batch through that shard's own PCIe pipeline
//            (pipelined_search -> dispatch_chunk, i.e. the full
//            PSA + NTG device path), gather values back into arrival
//            order. Devices run concurrently: wall time is the slowest
//            shard's pipeline, which is what the scaling bench measures.
//   range  : a query [lo, hi] fans out to every shard its span touches
//            (bounds clamped per shard); per-shard results merge back in
//            shard order — already globally ascending because shards are
//            ordered ranges — truncated at max_results.
//   update : ops scatter by target shard; each shard runs the Algorithm-1
//            CPU updater and resyncs its own image. Host apply work sums
//            across shards (one CPU), image resyncs overlap (one PCIe
//            link per device), mirroring the search-side timing model.
//
// A shard whose range holds no keys stays deviceless (index() == nullptr)
// and answers trivially: misses for points, nothing for ranges. An insert
// routed at an empty shard instantiates its device lazily.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "fault/injector.hpp"
#include "gpusim/device.hpp"
#include "harmonia/index.hpp"
#include "harmonia/pipeline.hpp"
#include "obs/observer.hpp"
#include "shard/plan.hpp"

namespace harmonia::shard {

struct ShardedOptions {
  /// Per-shard tree construction (fanout, fill factor, const budget).
  IndexOptions index;
  /// Per-shard device preset; every shard gets an identical device.
  gpusim::DeviceSpec device = gpusim::titan_v();
  /// Host<->device link; each shard owns one (transfers overlap).
  TransferModel link;
  /// Chunking + query options for the per-shard search pipelines.
  PipelineOptions pipeline;
  /// Global-memory cap per simulated device (backing store is lazily
  /// allocated, but small caps keep accidental huge sweeps honest).
  std::uint64_t device_global_bytes = 2ULL << 30;
};

class ShardedIndex {
 public:
  /// Builds one tree + device image per shard from sorted, distinct
  /// entries (the same bulk-load contract as HarmoniaIndex::build).
  ShardedIndex(std::span<const btree::Entry> entries, ShardPlan plan,
               const ShardedOptions& options = {});

  const ShardPlan& plan() const { return plan_; }
  unsigned num_shards() const { return plan_.num_shards(); }
  const ShardedOptions& options() const { return options_; }

  /// Replaces shard `s` with a fresh device imaged from `tree` (recovery:
  /// a snapshot-loaded host tree becomes the shard's live index). Every
  /// key of `tree` must fall inside the shard's planned range.
  void install_shard(unsigned s, HarmoniaTree tree);

  /// Atomically adopts a new partition plan (live resharding: the caller
  /// has already re-imaged the shards whose ranges moved through the
  /// staged-update machinery). Same shard count; every shard's keys must
  /// all fall inside its NEW range — the same containment tripwire as
  /// install_shard, so a half-migrated flip cannot slip through.
  void set_plan(ShardPlan plan);

  /// The shard's index, or nullptr while its range holds no keys.
  HarmoniaIndex* shard(unsigned s);
  const HarmoniaIndex* shard(unsigned s) const;
  std::uint64_t shard_key_count(unsigned s) const;
  std::uint64_t num_keys() const;

  struct SearchResult {
    /// Values in arrival order; kNotFound for absent keys.
    std::vector<Value> values;
    /// Queries routed to each shard.
    std::vector<std::uint64_t> per_shard;
    /// Wall time: slowest shard pipeline (devices run concurrently).
    double total_seconds = 0.0;
    /// Summed device-occupied time across shards (work, not wall).
    double device_seconds = 0.0;
    unsigned bottleneck_shard = 0;
    /// Straggler sub-batches re-issued / re-issues that finished first
    /// (always zero without an active fault injector).
    unsigned hedges_issued = 0;
    unsigned hedges_won = 0;

    double throughput() const {
      return total_seconds > 0.0
                 ? static_cast<double>(values.size()) / total_seconds
                 : 0.0;
    }
  };

  /// Scatter -> per-shard PCIe pipeline -> gather. Results are identical
  /// to a single-device index over the same entries.
  SearchResult search(std::span<const Key> batch);

  /// Fault-aware scatter/gather at virtual time `now`: each shard's
  /// pipeline pays its active slowdown windows, and a shard running past
  /// `hedge.multiplier`x the median shard time gets its sub-batch
  /// re-issued at that detection point on an unimpaired link — the
  /// earlier finisher wins. A null/inactive injector is the plain path.
  SearchResult search(std::span<const Key> batch, fault::FaultInjector* injector,
                      double now);

  struct RangeResult {
    /// values[i]: ascending values of keys in [los[i], his[i]], truncated
    /// at max_results — byte-identical to the single-device range kernel.
    std::vector<std::vector<Value>> values;
    /// Queries whose span crossed at least one partition boundary.
    std::uint64_t straddling = 0;
    std::uint64_t total_results = 0;
    /// Slowest shard's (upload + kernel + download) service time.
    double total_seconds = 0.0;
  };

  RangeResult range(std::span<const Key> los, std::span<const Key> his,
                    unsigned max_results = 64);

  /// Batched online scans ([lo, n): the first ns[i] values with key >=
  /// los[i]). A scan fans out to every shard its coverage reaches (see
  /// scan_end_shard); per-shard pieces merge in shard order and truncate
  /// at ns[i] — byte-identical to a single-device scan_device.
  RangeResult scan(std::span<const Key> los, std::span<const std::uint32_t> ns);

  /// The last shard a scan of `n` results starting at `lo` can touch:
  /// extends from shard_of(lo) — whose contribution is host-counted, cost
  /// bounded by n — through whole-shard key counts until coverage >= n
  /// (or the last shard). The serving fan-out and the version fence both
  /// key off this span.
  unsigned scan_end_shard(Key lo, std::uint32_t n) const;

  /// Host-side scan oracle: first `n` entries with key >= lo, across
  /// shard boundaries.
  std::vector<btree::Entry> scan_host(Key lo, std::size_t n) const;

  /// Scatters ops by target shard and applies each sub-batch with the
  /// Algorithm-1 updater (`threads` workers per shard), then resyncs each
  /// touched shard's device image. Aggregated stats across shards.
  UpdateStats update_batch(std::span<const queries::UpdateOp> ops,
                           unsigned threads = 1);

  /// Modeled seconds of the last update's image resyncs: max over touched
  /// shards (each device re-uploads over its own link, concurrently).
  double last_resync_seconds() const { return last_resync_seconds_; }

  /// Host-side reference lookups (tests, oracles).
  std::optional<Value> search_host(Key key) const;
  std::vector<btree::Entry> range_host(Key lo, Key hi, std::size_t limit = 0) const;

  /// Attaches metrics: scatter/gather batches bump routing counters
  /// (per-shard query routing, straddling fan-outs, hedges). Null = no
  /// overhead; results never change either way.
  void set_observer(const obs::Observer& obs);

 private:
  struct Shard {
    std::unique_ptr<gpusim::Device> device;
    std::unique_ptr<HarmoniaIndex> index;
  };

  void build_shard(unsigned s, std::span<const btree::Entry> entries);
  /// Updates routed at a deviceless shard: replayed on a host map, then
  /// the shard is built from whatever survived.
  void apply_to_empty_shard(unsigned s, std::span<const queries::UpdateOp> ops,
                            UpdateStats& agg);

  ShardPlan plan_;
  ShardedOptions options_;
  std::vector<Shard> shards_;
  double last_resync_seconds_ = 0.0;
  obs::Observer obs_;
  /// Cached metric handles (null when unobserved). Routed counters are
  /// per shard, resolved once at set_observer.
  std::vector<obs::Counter*> routed_;
  obs::Counter* search_batches_ = nullptr;
  obs::Counter* straddling_ = nullptr;
  obs::Counter* update_ops_ = nullptr;
  obs::Counter* hedges_issued_ = nullptr;
  obs::Counter* hedges_won_ = nullptr;
};

}  // namespace harmonia::shard
