// Mixed update batches for the batch-update evaluation (Fig. 14: 5%
// inserts / 95% updates, batch size 4096K).
#pragma once

#include <cstdint>
#include <vector>

namespace harmonia::queries {

enum class OpKind : std::uint8_t { kUpdate, kInsert, kDelete };

struct UpdateOp {
  OpKind kind;
  std::uint64_t key;
  std::uint64_t value;
};

struct BatchSpec {
  std::uint64_t size = 4096 << 10;
  double insert_fraction = 0.05;
  double delete_fraction = 0.0;
  std::uint64_t seed = 1;
};

/// Builds a shuffled batch: updates target existing `tree_keys`, inserts
/// use fresh keys from gaps between existing ones, deletes target existing
/// keys (each key deleted at most once per batch).
std::vector<UpdateOp> make_update_batch(const std::vector<std::uint64_t>& tree_keys,
                                        const BatchSpec& spec);

}  // namespace harmonia::queries
