#include "queries/batch.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "queries/workload.hpp"

namespace harmonia::queries {

std::vector<UpdateOp> make_update_batch(const std::vector<std::uint64_t>& tree_keys,
                                        const BatchSpec& spec) {
  HARMONIA_CHECK(!tree_keys.empty());
  HARMONIA_CHECK(spec.insert_fraction >= 0.0 && spec.delete_fraction >= 0.0);
  HARMONIA_CHECK(spec.insert_fraction + spec.delete_fraction <= 1.0);

  Xoshiro256 rng(spec.seed);
  const auto n_insert = static_cast<std::uint64_t>(
      static_cast<double>(spec.size) * spec.insert_fraction);
  const auto n_delete = static_cast<std::uint64_t>(
      static_cast<double>(spec.size) * spec.delete_fraction);
  const std::uint64_t n_update = spec.size - n_insert - n_delete;

  std::vector<UpdateOp> ops;
  ops.reserve(spec.size);

  // Updates target distinct keys so a batch's final state is independent
  // of the order worker threads apply it in. When the batch is larger
  // than half the key set, sampling without replacement would degenerate,
  // so repetition is allowed (callers comparing against a sequential
  // oracle should keep batches below that).
  if (n_update <= tree_keys.size() / 2) {
    std::unordered_set<std::uint64_t> used_updates;
    used_updates.reserve(n_update * 2);
    while (used_updates.size() < n_update) {
      const std::uint64_t key = tree_keys[rng.next_below(tree_keys.size())];
      if (used_updates.insert(key).second) ops.push_back({OpKind::kUpdate, key, rng.next()});
    }
  } else {
    for (std::uint64_t i = 0; i < n_update; ++i) {
      const std::uint64_t key = tree_keys[rng.next_below(tree_keys.size())];
      ops.push_back({OpKind::kUpdate, key, rng.next()});
    }
  }

  // Inserts pick distinct gap midpoints so they are guaranteed novel keys.
  std::unordered_set<std::uint64_t> used;
  used.reserve(n_insert * 2);
  while (used.size() < n_insert) {
    const std::uint64_t i = rng.next_below(tree_keys.size() - 1);
    const std::uint64_t lo = tree_keys[i];
    const std::uint64_t hi = tree_keys[i + 1];
    if (hi - lo < 2) continue;
    const std::uint64_t key = lo + 1 + rng.next_below(hi - lo - 1);
    if (used.insert(key).second) ops.push_back({OpKind::kInsert, key, rng.next()});
  }

  std::unordered_set<std::uint64_t> deleted;
  deleted.reserve(n_delete * 2);
  while (deleted.size() < n_delete) {
    const std::uint64_t key = tree_keys[rng.next_below(tree_keys.size())];
    if (deleted.insert(key).second) ops.push_back({OpKind::kDelete, key, 0});
  }

  // Shuffle so op kinds interleave the way a real batch would.
  for (std::size_t i = ops.size(); i > 1; --i) {
    std::swap(ops[i - 1], ops[rng.next_below(i)]);
  }
  return ops;
}

}  // namespace harmonia::queries
