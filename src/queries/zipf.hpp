// Zipfian rank generator (Gray et al., "Quickly Generating Billion-Record
// Synthetic Databases") used for skewed query streams.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace harmonia::queries {

class ZipfGenerator {
 public:
  /// Ranks are drawn from [0, n) with P(rank) ∝ 1/(rank+1)^theta.
  ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed);

  std::uint64_t next();

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta);

  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Xoshiro256 rng_;
};

}  // namespace harmonia::queries
