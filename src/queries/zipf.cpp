#include "queries/zipf.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace harmonia::queries {

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  HARMONIA_CHECK(n > 0);
  HARMONIA_CHECK(theta > 0.0 && theta < 1.0);
  zetan_ = zeta(n, theta);
  const double zeta2 = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2 / zetan_);
}

double ZipfGenerator::zeta(std::uint64_t n, double theta) {
  // Direct summation; generators are constructed once per workload, and
  // the n we use (≤ 2^26) sums in well under a second.
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

std::uint64_t ZipfGenerator::next() {
  const double u = rng_.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace harmonia::queries
