// Workload generation: the keys that populate trees and the query streams
// that traverse them.
//
// The paper's search evaluation uses uniformly distributed queries over
// trees of 2^23–2^26 keys (§5.1); zipfian / clustered / sorted streams are
// provided for the extended experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace harmonia::queries {

/// The key reserved as the "empty slot" pad in device images; generators
/// never produce it.
inline constexpr std::uint64_t kReservedKey = ~std::uint64_t{0};

enum class Distribution {
  kUniform,    ///< uniform over the key universe (paper's main workload)
  kZipfian,    ///< skewed access, rank-frequency exponent ~0.99
  kGaussian,   ///< clustered around the middle of the universe
  kSorted,     ///< ascending targets (best-case locality)
  kSequential  ///< round-robin over the tree's keys in order
};

Distribution distribution_from_string(const std::string& name);
std::string to_string(Distribution d);

/// `count` distinct keys spread uniformly over [0, 2^64-2], sorted
/// ascending: the canonical tree population (keys occupy their space
/// sparsely, as §4.1.2 assumes).
std::vector<std::uint64_t> make_tree_keys(std::uint64_t count, std::uint64_t seed);

/// A query stream of `count` targets drawn from `tree_keys` (every query
/// hits an existing key) with the given distribution.
std::vector<std::uint64_t> make_queries(const std::vector<std::uint64_t>& tree_keys,
                                        std::uint64_t count, Distribution dist,
                                        std::uint64_t seed);

/// Keys **not** in `tree_keys` (for miss-path tests): midpoints of gaps.
std::vector<std::uint64_t> make_missing_keys(const std::vector<std::uint64_t>& tree_keys,
                                             std::uint64_t count, std::uint64_t seed);

}  // namespace harmonia::queries
