#include "queries/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "queries/zipf.hpp"

namespace harmonia::queries {

Distribution distribution_from_string(const std::string& name) {
  if (name == "uniform") return Distribution::kUniform;
  if (name == "zipfian" || name == "zipf") return Distribution::kZipfian;
  if (name == "gaussian" || name == "normal") return Distribution::kGaussian;
  if (name == "sorted") return Distribution::kSorted;
  if (name == "sequential") return Distribution::kSequential;
  throw std::invalid_argument("unknown distribution: " + name);
}

std::string to_string(Distribution d) {
  switch (d) {
    case Distribution::kUniform: return "uniform";
    case Distribution::kZipfian: return "zipfian";
    case Distribution::kGaussian: return "gaussian";
    case Distribution::kSorted: return "sorted";
    case Distribution::kSequential: return "sequential";
  }
  return "?";
}

std::vector<std::uint64_t> make_tree_keys(std::uint64_t count, std::uint64_t seed) {
  HARMONIA_CHECK(count > 0);
  // Stratified sampling: one key per stride keeps keys distinct, sorted,
  // and uniformly spread without an O(n log n) sort or a dedup pass.
  const std::uint64_t universe = kReservedKey;  // [0, 2^64 - 2]
  const std::uint64_t stride = universe / count;
  HARMONIA_CHECK_MSG(stride > 0, "tree size exceeds key universe");
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> keys(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    keys[i] = i * stride + rng.next_below(stride);
  }
  return keys;
}

std::vector<std::uint64_t> make_queries(const std::vector<std::uint64_t>& tree_keys,
                                        std::uint64_t count, Distribution dist,
                                        std::uint64_t seed) {
  HARMONIA_CHECK(!tree_keys.empty());
  const std::uint64_t n = tree_keys.size();
  std::vector<std::uint64_t> out(count);
  Xoshiro256 rng(seed);

  switch (dist) {
    case Distribution::kUniform:
      for (auto& q : out) q = tree_keys[rng.next_below(n)];
      break;
    case Distribution::kZipfian: {
      ZipfGenerator zipf(n, 0.99, seed);
      // Scatter ranks across the key space so the hot set is not one leaf.
      const std::uint64_t scramble = 0x9e3779b97f4a7c15ULL;
      for (auto& q : out) q = tree_keys[(zipf.next() * scramble) % n];
      break;
    }
    case Distribution::kGaussian: {
      // Box-Muller around the middle of the tree, sigma = n/8.
      const double mu = static_cast<double>(n) / 2.0;
      const double sigma = static_cast<double>(n) / 8.0;
      for (auto& q : out) {
        const double u1 = rng.next_double();
        const double u2 = rng.next_double();
        const double z =
            std::sqrt(-2.0 * std::log(u1 + 1e-300)) * std::cos(2.0 * M_PI * u2);
        auto idx = static_cast<std::int64_t>(mu + sigma * z);
        idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(n) - 1);
        q = tree_keys[static_cast<std::uint64_t>(idx)];
      }
      break;
    }
    case Distribution::kSorted: {
      for (auto& q : out) q = tree_keys[rng.next_below(n)];
      std::sort(out.begin(), out.end());
      break;
    }
    case Distribution::kSequential:
      for (std::uint64_t i = 0; i < count; ++i) out[i] = tree_keys[i % n];
      break;
  }
  return out;
}

std::vector<std::uint64_t> make_missing_keys(const std::vector<std::uint64_t>& tree_keys,
                                             std::uint64_t count, std::uint64_t seed) {
  HARMONIA_CHECK(tree_keys.size() >= 2);
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> out;
  std::unordered_set<std::uint64_t> seen;
  out.reserve(count);
  seen.reserve(count * 2);
  while (out.size() < count) {
    const std::uint64_t i = rng.next_below(tree_keys.size() - 1);
    const std::uint64_t lo = tree_keys[i];
    const std::uint64_t hi = tree_keys[i + 1];
    if (hi - lo < 2) continue;
    const std::uint64_t k = lo + 1 + rng.next_below(hi - lo - 1);
    if (seen.insert(k).second) out.push_back(k);
  }
  return out;
}

}  // namespace harmonia::queries
