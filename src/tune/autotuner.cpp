#include "tune/autotuner.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/expect.hpp"

namespace harmonia::tune {

namespace {

constexpr const char* kClasses[] = {"gold", "silver", "bronze"};
constexpr std::size_t kNumClasses = 3;

std::string us(double seconds) {
  std::ostringstream os;
  os << seconds * 1e6 << "us";
  return os.str();
}

}  // namespace

void AutotunerConfig::validate() const {
  HARMONIA_CHECK_MSG(tick_every > 0.0, "tune: tick_every must be positive");
  HARMONIA_CHECK_MSG(p99_band >= 0.0, "tune: p99_band must be >= 0");
  HARMONIA_CHECK_MSG(slo_p99 >= 0.0, "tune: slo_p99 must be >= 0");
  HARMONIA_CHECK_MSG(min_improvement >= 0.0,
                     "tune: min_improvement must be >= 0");
  HARMONIA_CHECK_MSG(min_batch > 0 && min_batch <= max_batch,
                     "tune: need 0 < min_batch <= max_batch");
  HARMONIA_CHECK_MSG(min_wait > 0.0 && min_wait <= max_wait,
                     "tune: need 0 < min_wait <= max_wait");
  HARMONIA_CHECK_MSG(max_apply_threads >= 1,
                     "tune: max_apply_threads must be >= 1");
  HARMONIA_CHECK_MSG(max_group_size >= 1 && max_group_size <= 32,
                     "tune: max_group_size must be in [1, 32]");
  HARMONIA_CHECK_MSG(max_sort_bits <= 64, "tune: max_sort_bits must be <= 64");
}

void AutotunerConfig::add_flags(Cli& cli) {
  cli.flag("tune-tick-us", "autotuner cadence (virtual us between ticks)",
           "2000")
      .flag("tune-cooldown", "quiet ticks after a kept or rolled-back move",
            "2")
      .flag("tune-p99-band",
            "tolerated fractional p99 regression on a kept move", "0.15")
      .flag("tune-slo-p99-us",
            "SLO veto: no trials while the window p99 exceeds this "
            "(us; 0 = off)",
            "0")
      .flag("tune-min-gain",
            "fractional throughput gain required to keep a move", "0.02")
      .flag("tune-min-batch", "lower bound for the batch-size climb", "64")
      .flag("tune-max-batch", "upper bound for the batch-size climb", "16384")
      .flag("tune-min-wait-us", "lower bound for the batch-deadline climb (us)",
            "25")
      .flag("tune-max-wait-us", "upper bound for the batch-deadline climb (us)",
            "2000")
      .flag("tune-max-threads", "upper bound for the apply-threads climb", "8");
}

AutotunerConfig AutotunerConfig::from_cli(const Cli& cli) {
  AutotunerConfig cfg;
  cfg.tick_every =
      static_cast<double>(cli.get_uint("tune-tick-us", 2000)) * 1e-6;
  cfg.cooldown_ticks = static_cast<unsigned>(cli.get_uint("tune-cooldown", 2));
  cfg.p99_band = cli.get_double("tune-p99-band", 0.15);
  cfg.slo_p99 = static_cast<double>(cli.get_uint("tune-slo-p99-us", 0)) * 1e-6;
  cfg.min_improvement = cli.get_double("tune-min-gain", 0.02);
  cfg.min_batch = cli.get_uint("tune-min-batch", 64);
  cfg.max_batch = cli.get_uint("tune-max-batch", 16384);
  cfg.min_wait =
      static_cast<double>(cli.get_uint("tune-min-wait-us", 25)) * 1e-6;
  cfg.max_wait =
      static_cast<double>(cli.get_uint("tune-max-wait-us", 2000)) * 1e-6;
  cfg.max_apply_threads =
      static_cast<unsigned>(cli.get_uint("tune-max-threads", 8));
  return cfg;
}

Autotuner::Autotuner(const AutotunerConfig& config,
                     obs::MetricsRegistry& metrics)
    : config_(config), metrics_(metrics) {
  config_.validate();
  const auto edges = obs::LatencyHistogram::exponential_edges(1e-7, 1.0, 28);
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    const std::string labels =
        std::string{"{class=\""} + kClasses[c] + "\"}";
    completed_.push_back(
        &metrics_.counter("serve_class_completed_total" + labels));
    dropped_.push_back(
        &metrics_.counter("serve_class_dropped_total" + labels));
    latency_.push_back(
        &metrics_.histogram("serve_class_latency_seconds" + labels, edges));
  }
  // underflow + buckets + overflow per class.
  bucket_snap_.assign(kNumClasses * (latency_[0]->bucket_count() + 2), 0);
  next_tick_ = config_.tick_every;
}

Autotuner::Window Autotuner::measure(double now) {
  Window w;
  const std::size_t nb = latency_[0]->bucket_count();
  const std::size_t slots = nb + 2;
  // Combined per-slot window deltas across the class histograms: the
  // controller optimizes the whole stream, not one class.
  std::vector<std::uint64_t> delta(slots, 0);
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    const obs::LatencyHistogram& h = *latency_[c];
    const std::size_t base = c * slots;
    delta[0] += h.underflow() - bucket_snap_[base];
    for (std::size_t i = 0; i < nb; ++i)
      delta[1 + i] += h.bucket(i) - bucket_snap_[base + 1 + i];
    delta[slots - 1] += h.overflow() - bucket_snap_[base + slots - 1];
    w.completed += completed_[c]->value();
    w.dropped += dropped_[c]->value();
  }
  w.completed -= completed_snap_;
  w.dropped -= dropped_snap_;
  for (const std::uint64_t d : delta) total += d;

  const double window = now - last_tick_;
  w.throughput =
      window > 0.0 ? static_cast<double>(w.completed) / window : 0.0;

  if (total > 0) {
    // p99 interpolated within the bucket holding the 0.99 quantile of
    // this window's samples (+inf when it landed in overflow). Linear
    // interpolation — histogram_quantile style — keeps the estimate
    // continuous; raw bucket edges move in ~1.8x jumps, which would make
    // any fractional regression band meaningless.
    const std::uint64_t need = total - total / 100;
    std::uint64_t cum = delta[0];
    if (cum >= need) {
      w.p99 = latency_[0]->edge(0);
    } else {
      w.p99 = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < nb; ++i) {
        if (cum + delta[1 + i] >= need) {
          const double lo = latency_[0]->edge(i);
          const double hi = latency_[0]->edge(i + 1);
          const double frac = static_cast<double>(need - cum) /
                              static_cast<double>(delta[1 + i]);
          w.p99 = lo + frac * (hi - lo);
          break;
        }
        cum += delta[1 + i];
      }
    }
  }
  return w;
}

void Autotuner::snapshot() {
  const std::size_t nb = latency_[0]->bucket_count();
  const std::size_t slots = nb + 2;
  completed_snap_ = 0;
  dropped_snap_ = 0;
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    const obs::LatencyHistogram& h = *latency_[c];
    const std::size_t base = c * slots;
    bucket_snap_[base] = h.underflow();
    for (std::size_t i = 0; i < nb; ++i) bucket_snap_[base + 1 + i] = h.bucket(i);
    bucket_snap_[base + slots - 1] = h.overflow();
    completed_snap_ += completed_[c]->value();
    dropped_snap_ += dropped_[c]->value();
  }
}

void Autotuner::observe_profile(double now, unsigned group_size,
                                unsigned sort_bits) {
  (void)now;
  profiled_group_ = group_size;
  profiled_bits_ = sort_bits;
}

bool Autotuner::propose(const serve::Tunables& current, serve::Tunables& out,
                        std::string& note) {
  for (unsigned tried = 0; tried < kNumKnobs; ++tried) {
    const unsigned ki = knob_;
    const Knob k = static_cast<Knob>(ki);
    knob_ = (knob_ + 1) % kNumKnobs;
    int& dir = dir_[ki];
    out = current;
    std::ostringstream os;
    switch (k) {
      case Knob::kBatch: {
        std::size_t v = dir > 0 ? std::min(current.max_batch * 2,
                                           config_.max_batch)
                                : std::max(current.max_batch / 2,
                                           config_.min_batch);
        if (v == current.max_batch) {
          // Boundary: climb the other way instead of stalling there.
          dir = -dir;
          v = dir > 0 ? std::min(current.max_batch * 2, config_.max_batch)
                      : std::max(current.max_batch / 2, config_.min_batch);
        }
        if (v == current.max_batch) break;
        out.max_batch = v;
        os << "max_batch " << current.max_batch << " -> " << v;
        note = os.str();
        trial_knob_ = ki;
        return true;
      }
      case Knob::kWait: {
        double v = dir > 0 ? std::min(current.max_wait * 2.0, config_.max_wait)
                           : std::max(current.max_wait / 2.0, config_.min_wait);
        if (v == current.max_wait) {
          dir = -dir;
          v = dir > 0 ? std::min(current.max_wait * 2.0, config_.max_wait)
                      : std::max(current.max_wait / 2.0, config_.min_wait);
        }
        if (v == current.max_wait) break;
        out.max_wait = v;
        os << "max_wait " << us(current.max_wait) << " -> " << us(v);
        note = os.str();
        trial_knob_ = ki;
        return true;
      }
      case Knob::kThreads: {
        unsigned v = dir > 0 ? std::min(current.apply_threads + 1,
                                        config_.max_apply_threads)
                             : std::max(current.apply_threads - 1, 1u);
        if (v == current.apply_threads) {
          dir = -dir;
          v = dir > 0 ? std::min(current.apply_threads + 1,
                                 config_.max_apply_threads)
                      : std::max(current.apply_threads - 1, 1u);
        }
        if (v == current.apply_threads) break;
        out.apply_threads = v;
        os << "apply_threads " << current.apply_threads << " -> " << v;
        note = os.str();
        trial_knob_ = ki;
        return true;
      }
      case Knob::kGroup: {
        // Re-seed toward the swap-boundary re-profile rather than
        // stepping blind: the NTG model already solved Eq. 4 for the
        // committed tree.
        if (profiled_group_ == 0 || profiled_group_ > config_.max_group_size ||
            profiled_group_ == current.group_size) {
          break;
        }
        out.group_size = profiled_group_;
        os << "group_size " << current.group_size << " -> " << profiled_group_
           << " (profile)";
        note = os.str();
        trial_knob_ = ki;
        return true;
      }
      case Knob::kBits: {
        if (profiled_bits_ == 0 || profiled_bits_ > config_.max_sort_bits ||
            profiled_bits_ == current.sort_bits) {
          break;
        }
        out.sort_bits = profiled_bits_;
        os << "sort_bits " << current.sort_bits << " -> " << profiled_bits_
           << " (profile)";
        note = os.str();
        trial_knob_ = ki;
        return true;
      }
    }
  }
  return false;
}

serve::TuneDecision Autotuner::tick(double now, const serve::Tunables& current) {
  const Window w = measure(now);
  snapshot();
  last_tick_ = now;
  while (next_tick_ <= now) next_tick_ += config_.tick_every;

  serve::TuneDecision d;  // kNone unless a transition fires below
  switch (state_) {
    case State::kWarmup:
      if (w.completed > 0) {
        baseline_ = w;
        state_ = State::kSteady;
      }
      return d;

    case State::kTrial: {
      if (w.completed == 0) return d;  // idle window proves nothing: extend
      const bool improved =
          w.throughput >=
          baseline_.throughput * (1.0 + config_.min_improvement);
      // Under admission drops the stream is saturated: completing more is
      // strictly better and queue-driven p99 is transient backlog, so the
      // latency band only gates moves while the server is keeping up.
      const bool p99_ok = w.dropped > 0 ||
                          w.p99 <= baseline_.p99 * (1.0 + config_.p99_band);
      state_ = State::kSteady;
      cooldown_left_ = config_.cooldown_ticks;
      if (improved && p99_ok) {
        baseline_ = w;  // the move stands; climb from here
        // Stay on the winning knob: rewind the round-robin cursor so the
        // next trial keeps climbing the same dimension until it stops
        // paying off, instead of touring the other knobs first.
        knob_ = trial_knob_;
        return d;
      }
      // One-step rollback to the exact pre-move snapshot; flip that
      // knob's climb direction so its next trial explores the other way.
      ++rollbacks_;
      dir_[trial_knob_] = -dir_[trial_knob_];
      d.action = serve::TuneAction::kRollback;
      d.target = pre_trial_;
      d.note =
          trial_note_ + (p99_ok ? " (no gain)" : " (p99 out of band)");
      return d;
    }

    case State::kSteady: {
      if (w.completed > 0) baseline_ = w;  // rolling pre-move baseline
      if (cooldown_left_ > 0) {
        --cooldown_left_;
        return d;
      }
      if (w.completed == 0) return d;  // nothing to judge a trial against
      if (config_.slo_p99 > 0.0 && w.p99 > config_.slo_p99) {
        // Guard rail: the stream is already past its SLO — experimenting
        // now could only dig deeper. Hold position and re-check later.
        ++vetoes_;
        cooldown_left_ = config_.cooldown_ticks;
        d.action = serve::TuneAction::kVeto;
        d.note = "p99 " + us(w.p99) + " over slo " + us(config_.slo_p99);
        return d;
      }
      serve::Tunables target;
      std::string note;
      if (!propose(current, target, note)) return d;
      pre_trial_ = current;
      trial_note_ = note;
      state_ = State::kTrial;
      ++moves_;
      d.action = serve::TuneAction::kApply;
      d.target = target;
      d.note = note;
      return d;
    }
  }
  return d;
}

}  // namespace harmonia::tune
