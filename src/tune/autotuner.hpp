// Closed-loop online autotuner for the serving stack (docs/serving.md
// #autotuner): a serve::TuneController that periodically reads the obs
// MetricsRegistry the backend is already exporting — per-class latency
// histograms and completion counters — and hill-climbs the runtime
// Tunables (batch size/deadline, epoch apply threads, NTG group size,
// PSA sort bits) one bounded step at a time.
//
// The control loop is a trial/evaluate state machine on the virtual
// clock:
//
//   steady  : after a cooldown, pick the next knob round-robin and
//             propose one bounded step (x2 / /2 for batch and wait, +-1
//             thread; group size and sort bits re-seed toward the values
//             the backend re-profiles at each epoch-swap boundary).
//   trial   : one window later, compare the trial window against the
//             pre-move baseline. Keep the move when throughput improved
//             by >= min_improvement and p99 stayed within p99_band;
//             otherwise roll back to the exact pre-move snapshot.
//
// Guard rails: every step is bounded (a move changes one knob by one
// step inside configured bounds); a cooldown separates moves so each
// trial is judged on its own window; an SLO veto refuses to experiment
// at all while the observed p99 is already past slo_p99; and a kept
// move can still be undone one step later — the backend stamps every
// applied / vetoed / rolled-back transition into metrics and the trace.
//
// Everything the controller reads is derived from the deterministic
// virtual-clock simulation, so the decision sequence itself is
// deterministic: same stream + same config => the same moves at the
// same instants (the CI replay gate diffs exactly that).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "obs/metrics.hpp"
#include "serve/tunables.hpp"

namespace harmonia::tune {

struct AutotunerConfig {
  /// Controller cadence on the virtual clock (seconds between ticks).
  double tick_every = 2e-3;
  /// Quiet ticks after a kept or rolled-back move before the next trial.
  unsigned cooldown_ticks = 2;
  /// Tolerated p99 regression on a kept move, as a fraction of the
  /// baseline window's p99 (the rollback trigger).
  double p99_band = 0.15;
  /// SLO veto: refuse to start a trial while the observed window p99
  /// exceeds this (seconds). 0 disables the veto.
  double slo_p99 = 0.0;
  /// Minimum fractional throughput gain required to keep a move.
  double min_improvement = 0.02;

  // Bounds for the climb. The caller must keep max_batch within the
  // server's construction-time queue capacity — Tunables::validate
  // rejects a decision past it, and install_tunables throws.
  std::size_t min_batch = 64;
  std::size_t max_batch = 1 << 14;
  double min_wait = 25e-6;
  double max_wait = 2e-3;
  unsigned max_apply_threads = 8;
  unsigned max_group_size = 32;
  unsigned max_sort_bits = 32;

  void validate() const;
  static void add_flags(Cli& cli);
  static AutotunerConfig from_cli(const Cli& cli);
};

class Autotuner : public serve::TuneController {
 public:
  /// Reads the serving layer's per-class instruments out of `metrics` —
  /// the same registry passed to the backend via ServeOptions::obs (the
  /// handles register on first use, so construction order is free).
  Autotuner(const AutotunerConfig& config, obs::MetricsRegistry& metrics);

  double next_tick() const override { return next_tick_; }
  serve::TuneDecision tick(double now, const serve::Tunables& current) override;
  /// Swap-boundary re-profile feed from the backend: what a static
  /// profile of the freshly committed tree would pick. The climber
  /// re-seeds the image/PSA knobs toward these instead of stepping blind.
  void observe_profile(double now, unsigned group_size,
                       unsigned sort_bits) override;

  std::uint64_t moves() const { return moves_; }
  std::uint64_t vetoes() const { return vetoes_; }
  std::uint64_t rollbacks() const { return rollbacks_; }

 private:
  /// One measurement window: the delta of the cumulative instruments
  /// between two consecutive ticks.
  struct Window {
    std::uint64_t completed = 0;
    std::uint64_t dropped = 0;  // admission drops: the saturation signal
    double throughput = 0.0;    // completed / window seconds
    double p99 = 0.0;           // interpolated 0.99 quantile
  };

  enum class State : std::uint8_t { kWarmup, kSteady, kTrial };

  /// The climbable knobs, in round-robin order.
  enum class Knob : std::uint8_t { kBatch, kWait, kThreads, kGroup, kBits };
  static constexpr unsigned kNumKnobs = 5;

  Window measure(double now);
  void snapshot();
  /// The next legal one-step move from `current`, cycling knobs_ from
  /// knob_; returns false when no knob can move.
  bool propose(const serve::Tunables& current, serve::Tunables& out,
               std::string& note);

  AutotunerConfig config_;
  obs::MetricsRegistry& metrics_;
  /// Per-class completion counters + latency histograms (gold, silver,
  /// bronze — single-class streams land in gold).
  std::vector<const obs::Counter*> completed_;
  std::vector<const obs::Counter*> dropped_;
  std::vector<const obs::LatencyHistogram*> latency_;

  double next_tick_ = 0.0;
  double last_tick_ = 0.0;
  /// Cumulative instrument snapshot at the previous tick.
  std::vector<std::uint64_t> bucket_snap_;
  std::uint64_t completed_snap_ = 0;
  std::uint64_t dropped_snap_ = 0;

  State state_ = State::kWarmup;
  unsigned knob_ = 0;          // next knob to try (round-robin index)
  int dir_[kNumKnobs] = {+1, +1, +1, +1, +1};  // per-knob climb direction
  unsigned cooldown_left_ = 0;
  Window baseline_;
  serve::Tunables pre_trial_;  // exact rollback target
  unsigned trial_knob_ = 0;    // which knob the inflight trial moved
  std::string trial_note_;

  /// Latest swap-boundary re-profile (0 = none seen yet).
  unsigned profiled_group_ = 0;
  unsigned profiled_bits_ = 0;

  std::uint64_t moves_ = 0;
  std::uint64_t vetoes_ = 0;
  std::uint64_t rollbacks_ = 0;
};

}  // namespace harmonia::tune
