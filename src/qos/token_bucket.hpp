// Deterministic token bucket on the serving layer's virtual clock.
//
// Tokens refill continuously at `rate` per virtual second up to `burst`;
// a take that cannot be covered fails without consuming anything. All
// arithmetic is a pure function of (rate, burst, take times), so a replay
// of the same request stream throttles identically — the property the
// metrics-determinism CI gate pins.
#pragma once

#include <cstdint>

namespace harmonia::qos {

class TokenBucket {
 public:
  /// The one acceptance tolerance (refill rounding): a take of t succeeds
  /// iff balance + kEpsilon >= t. Every preview (`can_take`) and the take
  /// itself (`try_take`) share it, so a preview at an instant can never
  /// disagree with the take that follows at the same instant.
  static constexpr double kEpsilon = 1e-12;

  /// Starts full (burst tokens) at virtual time `start`.
  TokenBucket(double rate, double burst, double start = 0.0);

  /// Takes `tokens` at virtual time `now` (monotone per bucket); false =
  /// insufficient tokens, nothing consumed.
  bool try_take(double now, double tokens = 1.0);

  /// Preview of try_take at `now`, without consuming: uses the same
  /// refill arithmetic and the same kEpsilon, so the answers agree.
  bool can_take(double now, double tokens = 1.0) const;

  /// Balance after refill at `now`, without consuming.
  double tokens_at(double now) const;

  double rate() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void refill(double now);

  double rate_;
  double burst_;
  double tokens_;
  double last_;
};

}  // namespace harmonia::qos
