#include "qos/priority.hpp"

#include "common/expect.hpp"

namespace harmonia::qos {

const char* to_string(Priority c) {
  switch (c) {
    case Priority::kGold: return "gold";
    case Priority::kSilver: return "silver";
    case Priority::kBronze: return "bronze";
  }
  return "?";
}

Priority priority_from_string(std::string_view name) {
  if (name == "gold") return Priority::kGold;
  if (name == "silver") return Priority::kSilver;
  if (name == "bronze") return Priority::kBronze;
  HARMONIA_CHECK_MSG(false, "unknown priority class '" << name
                                << "' (expected gold|silver|bronze)");
  return Priority::kGold;  // unreachable
}

}  // namespace harmonia::qos
