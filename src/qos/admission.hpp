// QosConfig — the one knob surface of the multi-tenant front-end — and
// the per-tenant token-bucket admission controller.
//
// The config travels inside serve::ServeOptions so both serving
// topologies (Server, ShardedServer) apply identical policy:
//   classes[c].weight          : weighted-fair batch formation share;
//   classes[c].deadline_factor : the class's batch deadline is
//                                max_wait * factor (gold 1.0 = the legacy
//                                deadline; bronze can trade latency for
//                                batching efficiency);
//   tenant_rate / tenant_burst : per-tenant token bucket at queue entry.
// A default-constructed config (enabled == false) is inert: single-class
// streams serve bit-identically to the pre-QoS scheduler.
#pragma once

#include <array>
#include <cstdint>
#include <map>

#include "qos/priority.hpp"
#include "qos/token_bucket.hpp"

namespace harmonia::qos {

struct ClassPolicy {
  /// Weighted-fair share of dispatch slots (relative across classes).
  double weight = 1.0;
  /// Batch deadline stretch: this class's deadline trigger fires at
  /// oldest_arrival + max_wait * deadline_factor.
  double deadline_factor = 1.0;
};

struct QosConfig {
  /// Master switch: false keeps every QoS branch (weighted-fair lane
  /// selection, eviction, deadline stretch, throttling) inert.
  bool enabled = false;
  std::array<ClassPolicy, kNumClasses> classes{};
  /// Per-tenant admission rate, requests per virtual second (0 = no
  /// throttling; every tenant gets its own bucket at this rate).
  double tenant_rate = 0.0;
  /// Bucket capacity (burst) when tenant_rate > 0.
  double tenant_burst = 32.0;

  std::array<double, kNumClasses> weights() const {
    return {classes[0].weight, classes[1].weight, classes[2].weight};
  }

  /// Throws ContractViolation on non-positive weights/factors or a
  /// non-positive burst with throttling on.
  void validate() const;
};

/// Per-tenant token buckets at the serving queue entry. Buckets are
/// created lazily on a tenant's first arrival (full, anchored at that
/// arrival instant), so the tenant population never needs declaring.
class AdmissionController {
 public:
  explicit AdmissionController(const QosConfig& config);

  /// True when arrivals must pass a bucket (enabled && tenant_rate > 0).
  bool throttling() const;

  /// Charges one token for `tenant` at virtual time `now`. False = over
  /// rate: the caller answers the request dropped (a `throttled` drop).
  bool admit(std::uint32_t tenant, double now);

  std::uint64_t throttled() const { return throttled_; }
  std::size_t tenants_seen() const { return buckets_.size(); }

 private:
  QosConfig config_;
  std::map<std::uint32_t, TokenBucket> buckets_;
  std::uint64_t throttled_ = 0;
};

}  // namespace harmonia::qos
