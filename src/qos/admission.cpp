#include "qos/admission.hpp"

#include "common/expect.hpp"

namespace harmonia::qos {

void QosConfig::validate() const {
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    HARMONIA_CHECK_MSG(classes[c].weight > 0.0,
                       "qos: class " << to_string(priority_at(c))
                                     << " weight must be positive");
    HARMONIA_CHECK_MSG(classes[c].deadline_factor > 0.0,
                       "qos: class " << to_string(priority_at(c))
                                     << " deadline_factor must be positive");
  }
  HARMONIA_CHECK_MSG(tenant_rate >= 0.0, "qos: tenant_rate may not be negative");
  HARMONIA_CHECK_MSG(tenant_rate == 0.0 || tenant_burst > 0.0,
                     "qos: tenant_burst must be positive when throttling");
}

AdmissionController::AdmissionController(const QosConfig& config)
    : config_(config) {
  config_.validate();
}

bool AdmissionController::throttling() const {
  return config_.enabled && config_.tenant_rate > 0.0;
}

bool AdmissionController::admit(std::uint32_t tenant, double now) {
  if (!throttling()) return true;
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    it = buckets_
             .emplace(tenant, TokenBucket(config_.tenant_rate,
                                          config_.tenant_burst, now))
             .first;
  }
  if (it->second.try_take(now)) return true;
  ++throttled_;
  return false;
}

}  // namespace harmonia::qos
