#include "qos/token_bucket.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace harmonia::qos {

TokenBucket::TokenBucket(double rate, double burst, double start)
    : rate_(rate), burst_(burst), tokens_(burst), last_(start) {
  HARMONIA_CHECK(rate_ >= 0.0);
  HARMONIA_CHECK(burst_ > 0.0);
}

void TokenBucket::refill(double now) {
  if (now <= last_) return;  // same-instant arrivals share one balance
  tokens_ = std::min(burst_, tokens_ + (now - last_) * rate_);
  last_ = now;
}

bool TokenBucket::try_take(double now, double tokens) {
  refill(now);
  if (tokens_ + kEpsilon < tokens) return false;
  tokens_ -= tokens;
  return true;
}

bool TokenBucket::can_take(double now, double tokens) const {
  // tokens_at computes the identical std::min expression refill() would
  // store, so this is bitwise the same comparison try_take makes.
  return !(tokens_at(now) + kEpsilon < tokens);
}

double TokenBucket::tokens_at(double now) const {
  if (now <= last_) return tokens_;
  return std::min(burst_, tokens_ + (now - last_) * rate_);
}

}  // namespace harmonia::qos
