#include "qos/wfq.hpp"

#include "common/expect.hpp"

namespace harmonia::qos {

WeightedFair::WeightedFair(const std::array<double, kNumClasses>& weights)
    : weight_(weights) {
  for (const double w : weight_) HARMONIA_CHECK_MSG(w > 0.0, "class weights must be positive");
}

}  // namespace harmonia::qos
