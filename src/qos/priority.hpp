// Priority classes for the multi-tenant QoS front-end (src/qos/).
//
// Every serving request carries a tenant id and one of three priority
// classes. The class decides three things downstream:
//   admission : per-tenant token buckets meter arrivals (admission.hpp);
//   batching  : the scheduler forms batches weighted-fair across classes
//               and stretches the deadline trigger by the class's
//               deadline factor (serve/batch_scheduler.hpp);
//   overload  : when a kind's admission budget is full, the newest
//               request of the lowest queued class is shed first.
// Three classes keep the policy surface small while exercising every
// interesting ordering (top, middle, sacrificial).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace harmonia::qos {

enum class Priority : std::uint8_t { kGold = 0, kSilver = 1, kBronze = 2 };

inline constexpr std::size_t kNumClasses = 3;

constexpr std::size_t index(Priority c) { return static_cast<std::size_t>(c); }

constexpr Priority priority_at(std::size_t i) {
  return static_cast<Priority>(static_cast<std::uint8_t>(i));
}

/// "gold" / "silver" / "bronze".
const char* to_string(Priority c);

/// Inverse of to_string; throws ContractViolation on an unknown name.
Priority priority_from_string(std::string_view name);

/// The deterministic tenant -> class mapping shared by the workload
/// generator, the tools, and the benches: tenant t serves in class
/// t % kNumClasses, so tenant 0 is always gold and every class is
/// populated once there are >= 3 tenants.
constexpr Priority class_of_tenant(std::uint32_t tenant) {
  return static_cast<Priority>(tenant % kNumClasses);
}

}  // namespace harmonia::qos
