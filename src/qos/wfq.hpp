// Weighted-fair service accounting across priority classes.
//
// The classic virtual-time formulation stripped to what batch formation
// needs: each class accrues service units (requests dispatched) and its
// virtual time is service/weight. The scheduler serves the eligible lane
// with the smallest virtual time, so over a saturated window class c
// receives weight[c] / sum(weights) of the dispatch slots — weighted
// fairness without per-request timestamps.
#pragma once

#include <array>

#include "qos/priority.hpp"

namespace harmonia::qos {

class WeightedFair {
 public:
  explicit WeightedFair(const std::array<double, kNumClasses>& weights);

  /// Virtual time of class `c`: accrued service / weight. Lower = owed.
  double vtime(Priority c) const {
    return service_[index(c)] / weight_[index(c)];
  }

  /// Books `units` of service (dispatched requests) against class `c`.
  void charge(Priority c, double units) { service_[index(c)] += units; }

  double weight(Priority c) const { return weight_[index(c)]; }
  double service(Priority c) const { return service_[index(c)]; }

 private:
  std::array<double, kNumClasses> weight_;
  std::array<double, kNumClasses> service_{};
};

}  // namespace harmonia::qos
